(** Append-only write-ahead log of session events, stored as a sequence of
    fixed-size {e segments}.

    The journal is the service's source of truth: every applied arrival and
    departure — together with the placement decision the policy made — is
    appended as one text record before the client sees the reply, so a
    crashed server can be rebuilt exactly (see {!Recovery}).

    {b On-disk layout.} A journal configured at [path] is the family of
    sibling files [path.NNNNNN.seg] (sealed) and [path.NNNNNN.seg.open]
    (active), each a {!Segment}: a header naming the policy/seed/capacity
    and the {e base} — the global index of the segment's first record —
    followed by record lines. Records stream into the single active
    segment; when it reaches [segment_bytes] it is {e sealed}: a
    [seal,<count>,<crc32>] footer is written, the content fsynced, the file
    renamed [.open] → [.seg], and a fresh active segment opened. Because
    the fsync precedes the rename, a sealed segment is complete by
    construction — any torn tail or CRC mismatch inside one is corruption
    and reading fails hard; only the active segment's unterminated final
    line is healed (dropped) after a crash.

    Recovery reads the {e chain}: the longest event-contiguous suffix of
    segments (each segment's base equals its predecessor's base + count).
    Files below a contiguity gap are stale leftovers of a crashed
    {!truncate}/{!retire_sealed} and are deleted on the next {!append_to};
    whether the snapshot actually covers the chain's base is {!Recovery}'s
    existing missing-records check.

    Sealing enables {e online compaction} ({!Server.compaction_step}):
    once a snapshot's durable frontier covers a sealed segment entirely,
    the segment is unlinked ({!retire_sealed}) without touching the active
    write path — disk stays bounded while the server keeps serving.

    Record layout (v2, same codec as the legacy format — see {!Record}):
    - [arrive,<tenant>,<t>,<item>,<bin>,<new01>,<s1>,...,<sd>,~<sum>]
    - [depart,<tenant>,<t>,<item>,~<sum>]

    [~<sum>] is a 16-bit checksum of the record body, so a torn final
    record in the {e active} segment is detected and dropped rather than
    misparsed.

    {b Legacy journals.} A pre-segment single file at [path] itself
    ([# dvbp-journal v1]/[v2] magic) is still read, and {!append_to}
    migrates it into an active segment — segment first made durable, then
    the legacy file unlinked — so old journals keep replaying
    bit-identically and the migration is crash-safe at every boundary.

    Durability: the writer flushes every record to the OS ([write(2)]) as it
    is appended — a [SIGKILL] loses nothing already appended — and batches
    the much more expensive [fsync(2)] every [fsync_every] records (plus on
    seal/{!sync}/{!close}), so a power failure can lose at most the last
    batch.

    All file access goes through an injectable {!Io} backend (default
    {!Real_io.v}); the deterministic simulation tests swap in a simulated
    filesystem that crashes at every I/O boundary — including every seal,
    rename, retire and directory fsync of this module. *)

type header = Record.header = {
  policy : string;  (** policy short name, as accepted by [Policy.of_name] *)
  seed : int;  (** root seed of the policy's rng (used by ["rf"]) *)
  capacity : Dvbp_vec.Vec.t;
  base : int;  (** events preceding this file (snapshotted prefix length) *)
}

type event = Record.event =
  | Arrive of {
      tenant : string;
      time : float;
      item_id : int;
      size : Dvbp_vec.Vec.t;
      bin_id : int;  (** the placement the live policy chose *)
      opened_new_bin : bool;
    }
  | Depart of { tenant : string; time : float; item_id : int }

val event_time : event -> float
val event_item : event -> int
val event_tenant : event -> string
val equal_event : event -> event -> bool
val pp_event : Format.formatter -> event -> unit

(** {1 Record codec} *)

val encode_event : event -> string
(** One v2 record line, checksum included, no trailing newline. *)

val decode_event : ?version:int -> string -> (event, string) result
(** Inverse of {!encode_event}; validates syntax and checksum.
    [version] (default [2]) selects the record grammar — the two are not
    self-distinguishing, so callers must pass the version named by the
    file's magic line. v1 records decode with [Tenant.default]. *)

(** {1 Reading} *)

type read = {
  header : header;  (** [base] = index of the first event below *)
  events : event list;  (** journal order (oldest first) *)
  dropped_torn : bool;  (** the active segment's torn tail was dropped *)
  version : int;  (** segmented journals read as [2]; legacy files report
                      their magic's version *)
}

val of_string : string -> (read, string) result
(** Parse a {e legacy} single-file journal (v1/v2 magic). Segment files are
    parsed by {!Segment.parse}. *)

val read_file : ?io:Io.t -> string -> (read, string) result
(** Read the journal configured at [path]: the legacy file if one exists,
    otherwise the segment chain. Fails on corruption (including any damage
    inside a sealed segment) and when neither form is present. *)

val exists : ?io:Io.t -> string -> bool
(** Whether [path] holds durable journal state a resume must consult: a
    legacy file or at least one readable segment. Unreadable segments
    count as existing — corruption must surface as a resume error, not be
    shadowed by a fresh start. *)

(** {1 Writing} *)

type writer

val create :
  ?io:Io.t ->
  ?metrics:Metrics.t ->
  ?fsync_every:int ->
  ?segment_bytes:int ->
  path:string ->
  header ->
  writer
(** Starts a fresh journal at [path]: removes any previous journal files
    (legacy and segments) and opens active segment [000000]. [fsync_every]
    (default [64]) batches fsyncs; [1] syncs every record. [segment_bytes]
    (default 1 MiB) is the roll threshold: an append that carries the
    active segment past it triggers a seal. [metrics] (default
    {!Metrics.noop}) receives append/fsync/seal/retire/truncate/heal
    tallies.
    @raise Sys_error on IO failure (with the default backend).
    @raise Invalid_argument if [fsync_every < 1], [segment_bytes < 64] or
    [header.base < 0]. *)

val append_to :
  ?io:Io.t ->
  ?metrics:Metrics.t ->
  ?fsync_every:int ->
  ?segment_bytes:int ->
  path:string ->
  header ->
  (writer * read, string) result
(** Re-opens an existing journal for appending after validating that its
    header equals [header] (a policy/capacity/seed mismatch is an error, not
    a silent divergence); returns the already-present records too. Performs
    all resume-time maintenance: heals the active segment's torn tail
    (never a sealed segment's — that is corruption), completes seal renames
    a crash rolled back, deletes stale below-chain files, and migrates a
    legacy single-file journal into segments. A missing or empty journal is
    created fresh. *)

val append : writer -> event -> unit
(** Streaming append: one record, flushed to the OS; fsyncs per the
    [fsync_every] cadence (a power cut may lose up to the last cadence
    window of {e acked} records — the blocking server's contract). May
    seal the active segment and open the next one. *)

val append_batch : writer -> event list -> unit
(** Group commit: appends the whole batch as one buffered write and
    issues exactly {e one} fsync — after which every record in the batch
    (and any earlier unsynced streaming append; fsync covers the file) is
    durable. An empty batch is a no-op (no write, no fsync). Callers
    release replies only after this returns, so a power cut can never
    lose a batch-acked record. Batch sizing (the [fsync_every] per-batch
    ceiling) is the caller's job — see {!Server.handle_batch}. The roll
    check runs once per batch (after the fsync), so a segment may
    overshoot [segment_bytes] by at most one batch. *)

val sync : writer -> unit
(** Forces an fsync now. *)

val truncate : writer -> new_base:int -> unit
(** Drops every segment: a snapshot absorbed the whole prefix. A fresh
    active segment with [base = new_base] is created and made durable
    {e before} the old files are unlinked, so a crash at any boundary
    leaves a readable chain. *)

val retire_sealed : ?max_segments:int -> writer -> upto:int -> int
(** Unlinks sealed segments whose records all fall at or below event
    frontier [upto] (which a durable snapshot must cover), oldest first,
    at most [max_segments] (default: all eligible) per call — the bounded
    unit of online compaction. Returns the number retired; [0] when none
    qualify (never an error). *)

val close : writer -> unit
(** {!sync} then close. The writer is unusable afterwards. *)

val path : writer -> string

val appended : writer -> int
(** Records appended through this writer (excludes pre-existing ones). *)

val frontier : writer -> int
(** Global index one past the newest record ([base +] records written). *)

val sealed_segments : writer -> int
(** Sealed segments currently on disk (retire candidates). *)

val live_bytes : writer -> int
(** Total bytes across all live segment files, active included. *)
