(** Append-only write-ahead log of session events.

    The journal is the service's source of truth: every applied arrival and
    departure — together with the placement decision the policy made — is
    appended as one text record before the client sees the reply, so a
    crashed server can be rebuilt exactly (see {!Recovery}). The format is a
    versioned CSV in the same spirit as {!Dvbp_workload.Trace_io}:

    {v
    # dvbp-journal v2
    policy,mtf
    seed,42
    capacity,100,100
    base,0
    arrive,default,0,0,0,1,30,20,~0f3a
    depart,default,5,0,~1b22
    v}

    [base] is the number of session events that precede this file — [0] for
    a fresh journal, and the pre-truncation event count after a snapshot
    rewrote the journal (records before [base] then live in the snapshot's
    history, {!Snapshot}). Record layout (v2):
    - [arrive,<tenant>,<t>,<item>,<bin>,<new01>,<s1>,...,<sd>,~<sum>]
    - [depart,<tenant>,<t>,<item>,~<sum>]

    v1 files (no tenant field — every record belongs to {!Tenant.default})
    are still read; {!append_to} upgrades them to v2 in place before the
    first new record, so old journals keep replaying bit-identically.
    New files are always written v2.

    [~<sum>] is a 16-bit checksum of the record body, so a torn (partially
    written) final record is {e detected} and dropped rather than silently
    misparsed as a shorter-but-valid record. Reads are fully validated and
    report the offending line; a checksum or syntax failure anywhere except
    an unterminated final line is a hard error.

    Durability: the writer flushes every record to the OS ([write(2)]) as it
    is appended — a [SIGKILL] loses nothing already appended — and batches
    the much more expensive [fsync(2)] every [fsync_every] records (plus on
    {!sync}/{!close}), so a power failure can lose at most the last batch.

    All file access goes through an injectable {!Io} backend (default
    {!Real_io.v}); the deterministic simulation tests swap in a simulated
    filesystem that crashes at every I/O boundary. *)

type header = {
  policy : string;  (** policy short name, as accepted by [Policy.of_name] *)
  seed : int;  (** root seed of the policy's rng (used by ["rf"]) *)
  capacity : Dvbp_vec.Vec.t;
  base : int;  (** events preceding this file (snapshotted prefix length) *)
}

type event =
  | Arrive of {
      tenant : string;
      time : float;
      item_id : int;
      size : Dvbp_vec.Vec.t;
      bin_id : int;  (** the placement the live policy chose *)
      opened_new_bin : bool;
    }
  | Depart of { tenant : string; time : float; item_id : int }

val event_time : event -> float
val event_item : event -> int
val event_tenant : event -> string
val equal_event : event -> event -> bool
val pp_event : Format.formatter -> event -> unit

(** {1 Record codec} *)

val encode_event : event -> string
(** One v2 record line, checksum included, no trailing newline. *)

val decode_event : ?version:int -> string -> (event, string) result
(** Inverse of {!encode_event}; validates syntax and checksum.
    [version] (default [2]) selects the record grammar — the two are not
    self-distinguishing, so callers must pass the version named by the
    file's magic line. v1 records decode with [Tenant.default]. *)

(** {1 Reading} *)

type read = {
  header : header;
  events : event list;  (** journal order (oldest first) *)
  dropped_torn : bool;  (** an unterminated, unparseable tail was dropped *)
  version : int;  (** 1 or 2, from the magic line *)
}

val of_string : string -> (read, string) result
val read_file : ?io:Io.t -> string -> (read, string) result

(** {1 Writing} *)

type writer

val create :
  ?io:Io.t -> ?metrics:Metrics.t -> ?fsync_every:int -> path:string -> header -> writer
(** Truncates/creates [path] and writes the header. [fsync_every] (default
    [64]) batches fsyncs; [1] syncs every record. [metrics] (default
    {!Metrics.noop}) receives append/fsync/truncate/heal tallies.
    @raise Sys_error on IO failure (with the default backend).
    @raise Invalid_argument if [fsync_every < 1] or [header.base < 0]. *)

val append_to :
  ?io:Io.t ->
  ?metrics:Metrics.t ->
  ?fsync_every:int ->
  path:string ->
  header ->
  (writer * read, string) result
(** Re-opens an existing journal for appending after validating that its
    header equals [header] (a policy/capacity/seed mismatch is an error, not
    a silent divergence); returns the already-present records too. A missing
    or empty file is created fresh. *)

val append : writer -> event -> unit
(** Streaming append: one record, flushed to the OS; fsyncs per the
    [fsync_every] cadence (a power cut may lose up to the last cadence
    window of {e acked} records — the blocking server's contract). *)

val append_batch : writer -> event list -> unit
(** Group commit: appends the whole batch as one buffered write and
    issues exactly {e one} fsync — after which every record in the batch
    (and any earlier unsynced streaming append; fsync covers the file) is
    durable. An empty batch is a no-op (no write, no fsync). Callers
    release replies only after this returns, so a power cut can never
    lose a batch-acked record. Batch sizing (the [fsync_every] per-batch
    ceiling) is the caller's job — see {!Server.handle_batch}. *)

val sync : writer -> unit
(** Forces an fsync now. *)

val truncate : writer -> new_base:int -> unit
(** Atomically replaces the file with an empty journal whose header carries
    [base = new_base] — called after a successful snapshot absorbed the
    prefix. Written via {!Io.atomic_replace} (temp file, fsync, rename,
    directory fsync). *)

val close : writer -> unit
(** {!sync} then close. The writer is unusable afterwards. *)

val path : writer -> string
val appended : writer -> int
(** Records appended through this writer (excludes pre-existing ones). *)
