module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Policy = Dvbp_core.Policy
module Session = Dvbp_engine.Session
module R = Dvbp_obs.Registry

type config = {
  policy : string;
  seed : int;
  capacity : Vec.t;
  journal : string option;
  snapshot : string option;
  snapshot_every : int option;
  fsync_every : int;
}

type metrics = {
  requests : int;
  placements : int;
  rejections : int;
  departures : int;
  errors : int;
  snapshots : int;
  events : int;
}

type t = {
  config : config;
  io : Io.t;
  session : Session.t;
  journal : Journal.writer option;
  mutable history_rev : Journal.event list;
  mutable events : int;
  mutable since_snapshot : int;
  mutable requests : int;
  mutable placements : int;
  mutable rejections : int;
  mutable departures : int;
  mutable errors : int;
  mutable snapshots : int;
  obs : Metrics.t;
  mutable closed : bool;
}

let ( let* ) = Result.bind

let validate_config c =
  let* () =
    if c.fsync_every < 1 then
      Error (Printf.sprintf "fsync-every must be >= 1, got %d" c.fsync_every)
    else Ok ()
  in
  let* () =
    match c.snapshot_every with
    | Some n when n < 1 -> Error (Printf.sprintf "snapshot-every must be >= 1, got %d" n)
    | Some _ when c.snapshot = None ->
        Error "snapshot-every requires a snapshot path"
    | Some _ when c.journal = None ->
        Error "snapshot-every requires a journal path (there is nothing to truncate)"
    | Some _ | None -> Ok ()
  in
  Ok ()

let make_t config ~io ~obs session journal ~history ~since_snapshot =
  let history_rev = List.rev history in
  let t =
    {
      config;
      io;
      session;
      journal;
      history_rev;
      events = List.length history;
      since_snapshot;
      requests = 0;
      placements = 0;
      rejections = 0;
      departures = 0;
      errors = 0;
      snapshots = 0;
      obs;
      closed = false;
    }
  in
  if not (Metrics.is_noop obs) then begin
    let reg = Metrics.registry obs in
    Metrics.attach_session obs ~policy:config.policy session;
    R.Counter.pull reg "dvbp_server_placements_total" ~help:"PLACED replies" (fun () ->
        t.placements);
    R.Counter.pull reg "dvbp_server_rejections_total" ~help:"REJECT replies" (fun () ->
        t.rejections);
    R.Counter.pull reg "dvbp_server_departures_total" ~help:"Successful DEPART requests"
      (fun () -> t.departures);
    R.Counter.pull reg "dvbp_server_errors_total" ~help:"ERR replies" (fun () -> t.errors);
    R.Counter.pull reg "dvbp_server_snapshots_total"
      ~help:"Snapshots taken by this process (manual and auto)" (fun () -> t.snapshots);
    R.Counter.pull reg "dvbp_server_events_total"
      ~help:"Applied events (placements + departures) since genesis, replayed included"
      (fun () -> t.events);
    let start = Metrics.now obs in
    R.Gauge.pull reg "dvbp_server_uptime_seconds" ~help:"Wall time since this server started"
      (fun () -> Metrics.now obs -. start)
  end;
  t

let create ?(io = Real_io.v) ?metrics config =
  let obs = match metrics with Some m -> m | None -> Metrics.create () in
  let* () = validate_config config in
  let* policy = Policy.of_name ~rng:(Rng.create ~seed:config.seed) config.policy in
  let session = Session.create ~record_trace:false ~capacity:config.capacity ~policy () in
  let* journal =
    match config.journal with
    | None -> Ok None
    | Some path -> (
        match
          Journal.create ~io ~metrics:obs ~fsync_every:config.fsync_every ~path
            { Journal.policy = config.policy; seed = config.seed;
              capacity = config.capacity; base = 0 }
        with
        | w -> Ok (Some w)
        | exception Sys_error msg -> Error msg)
  in
  Ok (make_t config ~io ~obs session journal ~history:[] ~since_snapshot:0)

let resume ?(io = Real_io.v) ?metrics config (st : Recovery.state) =
  let obs = match metrics with Some m -> m | None -> Metrics.create () in
  let* () = validate_config config in
  let* () =
    if st.Recovery.policy <> config.policy then
      Error
        (Printf.sprintf "recovered state was built by policy %s, config says %s"
           st.Recovery.policy config.policy)
    else if st.Recovery.seed <> config.seed then
      Error
        (Printf.sprintf "recovered state used seed %d, config says %d"
           st.Recovery.seed config.seed)
    else if not (Vec.equal st.Recovery.capacity config.capacity) then
      Error
        (Printf.sprintf "recovered capacity %s, config says %s"
           (Vec.to_string st.Recovery.capacity)
           (Vec.to_string config.capacity))
    else Ok ()
  in
  let* journal =
    match config.journal with
    | None -> Ok None
    | Some path ->
        let* w, r =
          Journal.append_to ~io ~metrics:obs ~fsync_every:config.fsync_every ~path
            { Journal.policy = config.policy; seed = config.seed;
              capacity = config.capacity; base = 0 }
        in
        (* A crash between a snapshot's rename and the journal truncate
           leaves the snapshot ahead of the journal (both files durable,
           both valid). Appending to the stale journal would skip the
           events only the snapshot holds, so bring its base up to the
           recovered frontier first. *)
        let frontier = r.Journal.header.base + List.length r.Journal.events in
        let recovered = List.length st.Recovery.history in
        if frontier < recovered then Journal.truncate w ~new_base:recovered;
        Ok (Some w)
  in
  Ok
    (make_t config ~io ~obs st.Recovery.session journal ~history:st.Recovery.history
       ~since_snapshot:st.Recovery.from_journal)

let metrics t =
  {
    requests = t.requests;
    placements = t.placements;
    rejections = t.rejections;
    departures = t.departures;
    errors = t.errors;
    snapshots = t.snapshots;
    events = t.events;
  }

let session t = t.session
let observability t = t.obs
let latency_summary t = Metrics.request_summary t.obs

let stats_line t =
  (* The field list and order are a compatibility contract: scripts parse
     this line (regression-tested in test_service). New telemetry goes to
     METRICS, not here. *)
  let lat = Metrics.request_summary t.obs in
  let lat_mean, lat_max =
    if lat.Dvbp_obs.Histogram.n = 0 then (0.0, 0.0)
    else (lat.Dvbp_obs.Histogram.mean *. 1e6, lat.Dvbp_obs.Histogram.max_v *. 1e6)
  in
  Printf.sprintf
    "STATS requests=%d placements=%d rejections=%d departures=%d errors=%d \
     snapshots=%d events=%d open_bins=%d bins_opened=%d active_items=%d clock=%g \
     cost=%.4f latency_mean_us=%.1f latency_max_us=%.1f"
    t.requests t.placements t.rejections t.departures t.errors t.snapshots t.events
    (List.length (Session.open_bins t.session))
    (Session.bins_opened t.session)
    (Session.active_items t.session)
    (Session.now t.session)
    (Session.cost_so_far t.session)
    lat_mean lat_max

let record t e =
  (match t.journal with
  | Some w -> Metrics.time_journal_append t.obs (fun () -> Journal.append w e)
  | None -> ());
  t.history_rev <- e :: t.history_rev;
  t.events <- t.events + 1;
  t.since_snapshot <- t.since_snapshot + 1

let take_snapshot t =
  match t.config.snapshot with
  | None -> Error "no snapshot path configured"
  | Some path ->
      Metrics.time_snapshot t.obs (fun () ->
          let digest =
            Snapshot.digest_of_session ~policy:t.config.policy ~seed:t.config.seed
              ~capacity:t.config.capacity ~history:(List.rev t.history_rev) t.session
          in
          Snapshot.write ~io:t.io ~path digest;
          match t.journal with
          | Some w -> Journal.truncate w ~new_base:t.events
          | None -> ());
      t.since_snapshot <- 0;
      t.snapshots <- t.snapshots + 1;
      Ok path

let maybe_auto_snapshot t =
  match t.config.snapshot_every with
  | Some n when t.since_snapshot >= n -> (
      match take_snapshot t with
      | Ok _ -> ()
      | Error msg -> failwith msg (* excluded by validate_config *))
  | Some _ | None -> ()

let parse_float what s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> Ok x
  | Some _ | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_sizes s =
  let fields = String.split_on_char ',' s in
  let rec go = function
    | [] -> Ok []
    | f :: rest ->
        let* x = parse_int "size entry" f in
        let* xs = go rest in
        Ok (x :: xs)
  in
  let* sizes = go fields in
  match sizes with
  | [] -> Error "empty size vector"
  | _ ->
      if List.exists (fun x -> x < 0) sizes then Error "negative size"
      else Ok (Vec.of_list sizes)

let err t msg =
  t.errors <- t.errors + 1;
  (Printf.sprintf "ERR %s" msg, false)

let handle_arrive t ~time ~item_id ~size =
  match Session.arrive t.session ~at:time ~id:item_id ~size () with
  | exception Session.Session_error msg ->
      t.rejections <- t.rejections + 1;
      (Printf.sprintf "REJECT %s" msg, false)
  | p ->
      record t
        (Journal.Arrive
           { time; item_id; size; bin_id = p.Session.bin_id;
             opened_new_bin = p.Session.opened_new_bin });
      t.placements <- t.placements + 1;
      maybe_auto_snapshot t;
      ( Printf.sprintf "PLACED %d %d" p.Session.bin_id
          (if p.Session.opened_new_bin then 1 else 0),
        false )

let handle_depart t ~time ~item_id =
  match Session.depart t.session ~at:time ~item_id with
  | exception Session.Session_error msg -> err t msg
  | () ->
      record t (Journal.Depart { time; item_id });
      t.departures <- t.departures + 1;
      maybe_auto_snapshot t;
      ("OK", false)

let handle_line t line =
  t.requests <- t.requests + 1;
  Metrics.on_request t.obs (Metrics.kind_of_line line);
  (* tolerate CRLF clients and stray blanks between fields *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  match tokens with
  | [ "ARRIVE"; time; id; sizes ] -> (
      match
        let* time = parse_float "timestamp" time in
        let* item_id = parse_int "item id" id in
        let* size = parse_sizes sizes in
        Ok (time, item_id, size)
      with
      | Ok (time, item_id, size) -> handle_arrive t ~time ~item_id ~size
      | Error msg -> err t msg)
  | "ARRIVE" :: _ -> err t "usage: ARRIVE <t> <id> <s1,...,sd>"
  | [ "DEPART"; time; id ] -> (
      match
        let* time = parse_float "timestamp" time in
        let* item_id = parse_int "item id" id in
        Ok (time, item_id)
      with
      | Ok (time, item_id) -> handle_depart t ~time ~item_id
      | Error msg -> err t msg)
  | "DEPART" :: _ -> err t "usage: DEPART <t> <id>"
  | [ "STATS" ] -> (stats_line t, false)
  | [ "METRICS" ] -> (Metrics.render_text t.obs, false)
  | [ "SNAPSHOT" ] -> (
      match take_snapshot t with
      | Ok path -> (Printf.sprintf "OK snapshot %s events=%d" path t.events, false)
      | Error msg -> err t msg)
  | [ "QUIT" ] -> ("BYE", true)
  | [] -> err t "empty request"
  | cmd :: _ -> err t (Printf.sprintf "unknown command %S" cmd)

let close t =
  if not t.closed then begin
    (match t.journal with Some w -> Journal.close w | None -> ());
    t.closed <- true
  end

let serve t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let kind = Metrics.kind_of_line line in
        let t0 = Metrics.now t.obs in
        let reply, quit = handle_line t line in
        Metrics.observe_request t.obs kind ~seconds:(Metrics.now t.obs -. t0);
        output_string oc reply;
        output_char oc '\n';
        flush oc;
        if not quit then loop ()
  in
  Fun.protect ~finally:(fun () -> close t) loop
