module Vec = Dvbp_vec.Vec
module Policy = Dvbp_core.Policy
module Session = Dvbp_engine.Session
module R = Dvbp_obs.Registry

type config = {
  policy : string;
  seed : int;
  capacity : Vec.t;
  journal : string option;
  snapshot : string option;
  snapshot_every : int option;
  fsync_every : int;
  jobs : int;
  segment_bytes : int option;  (* journal segment roll threshold *)
  retain_segments : int option;  (* sealed-segment count that triggers compaction *)
}

type metrics = {
  requests : int;
  placements : int;
  rejections : int;
  departures : int;
  errors : int;
  snapshots : int;
  events : int;
}

(* Online compaction is a two-phase pass driven one bounded step at a time
   from the event loop: first snapshot the current frontier (making every
   record at or below it redundant), then retire covered sealed segments a
   few files per tick — group-commit acks never wait on a retire. *)
type compaction = C_idle | C_retiring of { frontier : int; started : float }

type t = {
  config : config;
  io : Io.t;
  tenants : (string, Session.t) Hashtbl.t;
  mutable tenant_order_rev : string list;
  journal : Journal.writer option;
  mutable compaction : compaction;
  mutable history_rev : Journal.event list;
  mutable events : int;
  mutable since_snapshot : int;
  mutable requests : int;
  mutable placements : int;
  mutable rejections : int;
  mutable departures : int;
  mutable errors : int;
  mutable snapshots : int;
  obs : Metrics.t;
  mutable closed : bool;
}

let ( let* ) = Result.bind

let validate_config c =
  let* () =
    if c.fsync_every < 1 then
      Error (Printf.sprintf "fsync-every must be >= 1, got %d" c.fsync_every)
    else Ok ()
  in
  let* () =
    if c.jobs < 1 then Error (Printf.sprintf "jobs must be >= 1, got %d" c.jobs)
    else Ok ()
  in
  let* () =
    match c.snapshot_every with
    | Some n when n < 1 -> Error (Printf.sprintf "snapshot-every must be >= 1, got %d" n)
    | Some _ when c.snapshot = None ->
        Error "snapshot-every requires a snapshot path"
    | Some _ when c.journal = None ->
        Error "snapshot-every requires a journal path (there is nothing to truncate)"
    | Some _ | None -> Ok ()
  in
  let* () =
    match c.segment_bytes with
    | Some n when n < 64 -> Error (Printf.sprintf "segment-bytes must be >= 64, got %d" n)
    | Some _ when c.journal = None ->
        Error "segment-bytes requires a journal path"
    | Some _ | None -> Ok ()
  in
  let* () =
    match c.retain_segments with
    | Some n when n < 0 ->
        Error (Printf.sprintf "retain-segments must be >= 0, got %d" n)
    | Some _ when c.snapshot = None ->
        Error "retain-segments requires a snapshot path (compaction snapshots first)"
    | Some _ when c.journal = None ->
        Error "retain-segments requires a journal path (there is nothing to retire)"
    | Some _ | None -> Ok ()
  in
  Ok ()

let register_tenant t tenant session =
  Hashtbl.add t.tenants tenant session;
  t.tenant_order_rev <- tenant :: t.tenant_order_rev;
  Metrics.attach_session t.obs ~tenant ~policy:t.config.policy session

let sessions t =
  List.rev_map (fun tn -> (tn, Hashtbl.find t.tenants tn)) t.tenant_order_rev

let make_t config ~io ~obs ~tenant_sessions journal ~history ~since_snapshot =
  let history_rev = List.rev history in
  let t =
    {
      config;
      io;
      tenants = Hashtbl.create 8;
      tenant_order_rev = [];
      journal;
      compaction = C_idle;
      history_rev;
      events = List.length history;
      since_snapshot;
      requests = 0;
      placements = 0;
      rejections = 0;
      departures = 0;
      errors = 0;
      snapshots = 0;
      obs;
      closed = false;
    }
  in
  List.iter (fun (tenant, session) -> register_tenant t tenant session) tenant_sessions;
  if not (Metrics.is_noop obs) then begin
    let reg = Metrics.registry obs in
    R.Counter.pull reg "dvbp_server_placements_total" ~help:"PLACED replies" (fun () ->
        t.placements);
    R.Counter.pull reg "dvbp_server_rejections_total" ~help:"REJECT replies" (fun () ->
        t.rejections);
    R.Counter.pull reg "dvbp_server_departures_total" ~help:"Successful DEPART requests"
      (fun () -> t.departures);
    R.Counter.pull reg "dvbp_server_errors_total" ~help:"ERR replies" (fun () -> t.errors);
    R.Counter.pull reg "dvbp_server_snapshots_total"
      ~help:"Snapshots taken by this process (manual and auto)" (fun () -> t.snapshots);
    R.Counter.pull reg "dvbp_server_events_total"
      ~help:"Applied events (placements + departures) since genesis, replayed included"
      (fun () -> t.events);
    R.Gauge.pull reg "dvbp_server_tenants" ~help:"Tenant sessions this server holds"
      (fun () -> float_of_int (List.length t.tenant_order_rev));
    let start = Metrics.now obs in
    R.Gauge.pull reg "dvbp_server_uptime_seconds" ~help:"Wall time since this server started"
      (fun () -> Metrics.now obs -. start)
  end;
  t

let fresh_tenant_session ~policy ~seed ~capacity tenant =
  let* p = Policy.of_name ~rng:(Tenant.rng ~seed tenant) policy in
  Ok (Session.create ~record_trace:false ~capacity ~policy:p ())

let create ?(io = Real_io.v) ?metrics config =
  let obs = match metrics with Some m -> m | None -> Metrics.create () in
  let* () = validate_config config in
  let* session =
    fresh_tenant_session ~policy:config.policy ~seed:config.seed
      ~capacity:config.capacity Tenant.default
  in
  let* journal =
    match config.journal with
    | None -> Ok None
    | Some path -> (
        match
          Journal.create ~io ~metrics:obs ~fsync_every:config.fsync_every
            ?segment_bytes:config.segment_bytes ~path
            { Journal.policy = config.policy; seed = config.seed;
              capacity = config.capacity; base = 0 }
        with
        | w -> Ok (Some w)
        | exception Sys_error msg -> Error msg)
  in
  Ok
    (make_t config ~io ~obs
       ~tenant_sessions:[ (Tenant.default, session) ]
       journal ~history:[] ~since_snapshot:0)

let resume ?(io = Real_io.v) ?metrics config (st : Recovery.state) =
  let obs = match metrics with Some m -> m | None -> Metrics.create () in
  let* () = validate_config config in
  let* () =
    if st.Recovery.policy <> config.policy then
      Error
        (Printf.sprintf "recovered state was built by policy %s, config says %s"
           st.Recovery.policy config.policy)
    else if st.Recovery.seed <> config.seed then
      Error
        (Printf.sprintf "recovered state used seed %d, config says %d"
           st.Recovery.seed config.seed)
    else if not (Vec.equal st.Recovery.capacity config.capacity) then
      Error
        (Printf.sprintf "recovered capacity %s, config says %s"
           (Vec.to_string st.Recovery.capacity)
           (Vec.to_string config.capacity))
    else Ok ()
  in
  let* journal =
    match config.journal with
    | None -> Ok None
    | Some path ->
        let* w, r =
          Journal.append_to ~io ~metrics:obs ~fsync_every:config.fsync_every
            ?segment_bytes:config.segment_bytes ~path
            { Journal.policy = config.policy; seed = config.seed;
              capacity = config.capacity; base = 0 }
        in
        (* A crash between a snapshot's rename and the journal truncate
           leaves the snapshot ahead of the journal (both files durable,
           both valid). Appending to the stale journal would skip the
           events only the snapshot holds, so bring its base up to the
           recovered frontier first. *)
        let frontier = r.Journal.header.base + List.length r.Journal.events in
        let recovered = List.length st.Recovery.history in
        if frontier < recovered then Journal.truncate w ~new_base:recovered;
        Ok (Some w)
  in
  Ok
    (make_t config ~io ~obs ~tenant_sessions:st.Recovery.sessions journal
       ~history:st.Recovery.history ~since_snapshot:st.Recovery.from_journal)

let metrics t =
  {
    requests = t.requests;
    placements = t.placements;
    rejections = t.rejections;
    departures = t.departures;
    errors = t.errors;
    snapshots = t.snapshots;
    events = t.events;
  }

let get_session t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> Ok s
  | None ->
      let* _ = Tenant.validate tenant in
      let* session =
        fresh_tenant_session ~policy:t.config.policy ~seed:t.config.seed
          ~capacity:t.config.capacity tenant
      in
      register_tenant t tenant session;
      Ok session

let session t =
  match Hashtbl.find_opt t.tenants Tenant.default with
  | Some s -> s
  | None -> invalid_arg "Server.session: no default tenant session"

let observability t = t.obs
let latency_summary t = Metrics.request_summary t.obs

let stats_line t =
  (* The field list and order are a compatibility contract: scripts parse
     this line (regression-tested in test_service). The engine fields
     aggregate across tenants (sums; clock is the max). New telemetry goes
     to METRICS, not here. *)
  let lat = Metrics.request_summary t.obs in
  let lat_mean, lat_max =
    if lat.Dvbp_obs.Histogram.n = 0 then (0.0, 0.0)
    else (lat.Dvbp_obs.Histogram.mean *. 1e6, lat.Dvbp_obs.Histogram.max_v *. 1e6)
  in
  let open_bins, bins_opened, active_items, clock, cost =
    List.fold_left
      (fun (ob, bo, ai, clk, cost) (_, s) ->
        ( ob + List.length (Session.open_bins s),
          bo + Session.bins_opened s,
          ai + Session.active_items s,
          Float.max clk (Session.now s),
          cost +. Session.cost_so_far s ))
      (0, 0, 0, 0.0, 0.0) (sessions t)
  in
  Printf.sprintf
    "STATS requests=%d placements=%d rejections=%d departures=%d errors=%d \
     snapshots=%d events=%d open_bins=%d bins_opened=%d active_items=%d clock=%g \
     cost=%.4f latency_mean_us=%.1f latency_max_us=%.1f"
    t.requests t.placements t.rejections t.departures t.errors t.snapshots t.events
    open_bins bins_opened active_items clock cost lat_mean lat_max

let record t e =
  (match t.journal with
  | Some w -> Metrics.time_journal_append t.obs (fun () -> Journal.append w e)
  | None -> ());
  t.history_rev <- e :: t.history_rev;
  t.events <- t.events + 1;
  t.since_snapshot <- t.since_snapshot + 1;
  Metrics.set_compaction_lag t.obs t.since_snapshot

(* Write a durable snapshot of the whole current state at [path]. What
   happens to the journal afterwards is the caller's choice: the classic
   snapshot path truncates everything, compaction retires covered sealed
   segments while the active one keeps streaming. *)
let write_snapshot t path =
  Metrics.time_snapshot t.obs (fun () ->
      let digests =
        List.map
          (fun (tenant, session) -> Snapshot.digest_of_session ~tenant session)
          (sessions t)
      in
      Snapshot.write ~io:t.io ~path
        { Snapshot.policy = t.config.policy; seed = t.config.seed;
          capacity = t.config.capacity; digests;
          history = List.rev t.history_rev });
  t.since_snapshot <- 0;
  t.snapshots <- t.snapshots + 1;
  Metrics.set_compaction_lag t.obs 0

let take_snapshot t =
  match t.config.snapshot with
  | None -> Error "no snapshot path configured"
  | Some path ->
      write_snapshot t path;
      (match t.journal with
      | Some w -> Journal.truncate w ~new_base:t.events
      | None -> ());
      Ok path

let maybe_auto_snapshot t =
  match t.config.snapshot_every with
  | Some n when t.since_snapshot >= n -> (
      match take_snapshot t with
      | Ok _ -> ()
      | Error msg -> failwith msg (* excluded by validate_config *))
  | Some _ | None -> ()

(* {2 Online compaction}

   Driven by the event loop between select ticks: when the sealed-segment
   count exceeds [retain_segments], one step snapshots the frontier (every
   record at or below it is now redundant), and subsequent steps retire
   covered sealed segments a few files at a time. Each step is a bounded
   amount of work, so group-commit acks never queue behind a whole
   compaction pass. *)

let retire_batch = 4 (* sealed segments unlinked per step *)

let compaction_pending t =
  match t.compaction with
  | C_retiring _ -> true
  | C_idle -> (
      match (t.config.retain_segments, t.journal) with
      | Some retain, Some w -> Journal.sealed_segments w > retain
      | _ -> false)

let compaction_step t =
  match t.compaction with
  | C_retiring { frontier; started } -> (
      match t.journal with
      | None -> t.compaction <- C_idle
      | Some w ->
          let retired = Journal.retire_sealed ~max_segments:retire_batch w ~upto:frontier in
          if retired < retire_batch then begin
            (* nothing left at or below the frontier: the pass is done *)
            Metrics.on_compaction t.obs ~seconds:(Metrics.now t.obs -. started);
            t.compaction <- C_idle
          end)
  | C_idle when compaction_pending t -> (
      match t.config.snapshot with
      | None -> () (* excluded by validate_config *)
      | Some path ->
          write_snapshot t path;
          t.compaction <- C_retiring { frontier = t.events; started = Metrics.now t.obs })
  | C_idle -> ()

let compact t =
  match (t.config.snapshot, t.journal) with
  | None, _ -> Error "no snapshot path configured"
  | _, None -> Error "no journal configured"
  | Some path, Some w ->
      let started = Metrics.now t.obs in
      write_snapshot t path;
      let retired = Journal.retire_sealed w ~upto:t.events in
      Metrics.on_compaction t.obs ~seconds:(Metrics.now t.obs -. started);
      t.compaction <- C_idle;
      Ok (path, retired)

let parse_float what s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> Ok x
  | Some _ | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_sizes s =
  let fields = String.split_on_char ',' s in
  let rec go = function
    | [] -> Ok []
    | f :: rest ->
        let* x = parse_int "size entry" f in
        let* xs = go rest in
        Ok (x :: xs)
  in
  let* sizes = go fields in
  match sizes with
  | [] -> Error "empty size vector"
  | _ ->
      if List.exists (fun x -> x < 0) sizes then Error "negative size"
      else Ok (Vec.of_list sizes)

let err t msg =
  t.errors <- t.errors + 1;
  (Printf.sprintf "ERR %s" msg, false)

let placed_reply (p : Session.placement) =
  String.concat ""
    [ "PLACED "; string_of_int p.Session.bin_id;
      (if p.Session.opened_new_bin then " 1" else " 0") ]

let handle_arrive t ~tenant ~time ~item_id ~size =
  match get_session t tenant with
  | Error msg -> err t msg
  | Ok session -> (
      match Session.arrive session ~at:time ~id:item_id ~size () with
      | exception Session.Session_error msg ->
          t.rejections <- t.rejections + 1;
          (Printf.sprintf "REJECT %s" msg, false)
      | p ->
          record t
            (Journal.Arrive
               { tenant; time; item_id; size; bin_id = p.Session.bin_id;
                 opened_new_bin = p.Session.opened_new_bin });
          t.placements <- t.placements + 1;
          maybe_auto_snapshot t;
          (placed_reply p, false))

let handle_depart t ~tenant ~time ~item_id =
  match get_session t tenant with
  | Error msg -> err t msg
  | Ok session -> (
      match Session.depart session ~at:time ~item_id with
      | exception Session.Session_error msg -> err t msg
      | () ->
          record t (Journal.Depart { tenant; time; item_id });
          t.departures <- t.departures + 1;
          maybe_auto_snapshot t;
          ("OK", false))

(* tolerate CRLF clients and stray blanks between fields *)
let tokenize line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let arrive_usage = "usage: ARRIVE [tenant] <t> <id> <s1,...,sd>"
let depart_usage = "usage: DEPART [tenant] <t> <id>"

(* Both grammars are told apart by token count: the tenant-prefixed form
   has one extra field, and tenant names never parse as timestamps (the
   charsets overlap only on digit strings, which are valid tenants but
   also valid times — token count, not content, decides). *)
let parse_arrive ?(tenant = Tenant.default) ~time ~id ~sizes () =
  let* tenant = Tenant.validate tenant in
  let* time = parse_float "timestamp" time in
  let* item_id = parse_int "item id" id in
  let* size = parse_sizes sizes in
  Ok (tenant, time, item_id, size)

let parse_depart ?(tenant = Tenant.default) ~time ~id () =
  let* tenant = Tenant.validate tenant in
  let* time = parse_float "timestamp" time in
  let* item_id = parse_int "item id" id in
  Ok (tenant, time, item_id)

let handle_line t line =
  t.requests <- t.requests + 1;
  Metrics.on_request t.obs (Metrics.kind_of_line line);
  match tokenize line with
  | [ "ARRIVE"; time; id; sizes ] -> (
      match parse_arrive ~time ~id ~sizes () with
      | Ok (tenant, time, item_id, size) -> handle_arrive t ~tenant ~time ~item_id ~size
      | Error msg -> err t msg)
  | [ "ARRIVE"; tenant; time; id; sizes ] -> (
      match parse_arrive ~tenant ~time ~id ~sizes () with
      | Ok (tenant, time, item_id, size) -> handle_arrive t ~tenant ~time ~item_id ~size
      | Error msg -> err t msg)
  | "ARRIVE" :: _ -> err t arrive_usage
  | [ "DEPART"; time; id ] -> (
      match parse_depart ~time ~id () with
      | Ok (tenant, time, item_id) -> handle_depart t ~tenant ~time ~item_id
      | Error msg -> err t msg)
  | [ "DEPART"; tenant; time; id ] -> (
      match parse_depart ~tenant ~time ~id () with
      | Ok (tenant, time, item_id) -> handle_depart t ~tenant ~time ~item_id
      | Error msg -> err t msg)
  | "DEPART" :: _ -> err t depart_usage
  | [ "STATS" ] -> (stats_line t, false)
  | [ "METRICS" ] -> (Metrics.render_text t.obs, false)
  | [ "SNAPSHOT" ] -> (
      match take_snapshot t with
      | Ok path -> (Printf.sprintf "OK snapshot %s events=%d" path t.events, false)
      | Error msg -> err t msg)
  | [ "QUIT" ] -> ("BYE", true)
  | [] -> err t "empty request"
  | cmd :: _ -> err t (Printf.sprintf "unknown command %S" cmd)

(* {2 Group-commit batch path}

   [handle_batch] is the event loop's entry point: it takes every line the
   loop drained this tick (arrival order across all connections) and
   returns one reply per line — {e after} journaling, so releasing the
   returned replies is always safe (batch-ack: an acked event is fsynced).

   The batch is processed as runs of event lines (ARRIVE/DEPART) broken by
   control lines (STATS, SNAPSHOT, ...), which are handled one at a time
   on the calling domain between runs. Within a run:

   + {e prep} (calling domain): parse each line, resolve its tenant
     session (creating it on first contact), pick its shard;
   + {e apply} (sharded over [config.jobs] domains via {!Dvbp_parallel}):
     each shard applies its lines in arrival order against its tenants'
     sessions and writes the outcome into that line's pre-assigned slot —
     a tenant's events all land on one shard ({!Tenant.shard}), so every
     per-tenant packing is bit-identical to [jobs = 1];
   + {e commit} (calling domain): walk outcomes in arrival order, append
     applied events to the journal in chunks of at most [fsync_every]
     records ({!Journal.append_batch}: one buffered write + one fsync per
     chunk), then account counters and release replies. *)

type prep =
  | P_none  (* reply already decided at prep (parse or tenant error) *)
  | P_arrive of {
      tenant : string;
      session : Session.t;
      time : float;
      item_id : int;
      size : Vec.t;
    }
  | P_depart of { tenant : string; session : Session.t; time : float; item_id : int }

type applied =
  | A_none
  | A_err of string  (* ERR reply computed by a worker (failed DEPART) *)
  | A_reject of string
  | A_placed of string * Journal.event
  | A_departed of Journal.event

let prep_shard = function
  | P_none -> 0
  | P_arrive { tenant; _ } | P_depart { tenant; _ } -> Tenant.hash tenant

let apply_prepped prep results k =
  match prep.(k) with
  | P_none -> ()
  | P_arrive { tenant; session; time; item_id; size } -> (
      match Session.arrive session ~at:time ~id:item_id ~size () with
      | exception Session.Session_error msg -> results.(k) <- A_reject msg
      | p ->
          results.(k) <-
            A_placed
              ( placed_reply p,
                Journal.Arrive
                  { tenant; time; item_id; size; bin_id = p.Session.bin_id;
                    opened_new_bin = p.Session.opened_new_bin } ))
  | P_depart { tenant; session; time; item_id } -> (
      match Session.depart session ~at:time ~item_id with
      | exception Session.Session_error msg -> results.(k) <- A_err msg
      | () -> results.(k) <- A_departed (Journal.Depart { tenant; time; item_id }))

let rec split_at n = function
  | [] -> ([], [])
  | rest when n <= 0 -> ([], rest)
  | x :: rest ->
      let a, b = split_at (n - 1) rest in
      (x :: a, b)

let flush_staged t staged_rev ~waiters =
  match (t.journal, staged_rev) with
  | None, _ | _, [] -> ()
  | Some w, _ ->
      Metrics.set_group_commit_waiters t.obs waiters;
      let rec chunks = function
        | [] -> ()
        | events ->
            (* per-batch ceiling: one commit never spans more than
               fsync_every records (satellite contract, pinned in tests) *)
            let chunk, rest = split_at t.config.fsync_every events in
            Metrics.time_journal_append t.obs (fun () -> Journal.append_batch w chunk);
            chunks rest
      in
      chunks (List.rev staged_rev);
      Metrics.set_group_commit_waiters t.obs 0

(* {3 Hot-path request scanner}

   [process_run] parses tens of thousands of well-formed ARRIVE/DEPART
   lines per second, so the common case avoids [tokenize]'s token list and
   the [parse_*] wrappers entirely: fields are scanned in place and ints
   are accumulated without allocating. Anything unusual — malformed
   numbers, sign prefixes, bad tenants, wrong arity — falls back to the
   tokenize-based parser so every error text and edge-case semantic stays
   identical to [handle_line]. *)

(* bounds of up to [Array.length starts] space-separated fields; -1 when
   there are more fields than slots (caller falls back) *)
let scan_fields line (starts : int array) (stops : int array) =
  let n = String.length line in
  let n = if n > 0 && String.unsafe_get line (n - 1) = '\r' then n - 1 else n in
  let max_fields = Array.length starts in
  let count = ref 0 in
  let i = ref 0 in
  while !i < n && !count < max_fields do
    while !i < n && String.unsafe_get line !i = ' ' do incr i done;
    if !i < n then begin
      starts.(!count) <- !i;
      while !i < n && String.unsafe_get line !i <> ' ' do incr i done;
      stops.(!count) <- !i;
      incr count
    end
  done;
  while !i < n && String.unsafe_get line !i = ' ' do incr i done;
  if !i < n then -1 else !count

let field_is line s e kw =
  e - s = String.length kw
  &&
  let ok = ref true in
  for j = 0 to e - s - 1 do
    if String.unsafe_get line (s + j) <> String.unsafe_get kw j then ok := false
  done;
  !ok

(* plain decimal int in [s, e); -1 on empty, non-digit or > 18 digits *)
let parse_uint line s e =
  if e <= s || e - s > 18 then -1
  else begin
    let v = ref 0 and ok = ref true in
    for j = s to e - 1 do
      let c = Char.code (String.unsafe_get line j) - 48 in
      if c < 0 || c > 9 then ok := false else v := (!v * 10) + c
    done;
    if !ok then !v else -1
  end

(* "10,20"-style size vector in [s, e); None on anything but plain
   decimal segments *)
let parse_sizes_fast line s e =
  if e <= s then None
  else begin
    let dims = ref 1 in
    for j = s to e - 1 do
      if String.unsafe_get line j = ',' then incr dims
    done;
    let arr = Array.make !dims 0 in
    let idx = ref 0 and v = ref 0 and len = ref 0 and ok = ref true in
    for j = s to e - 1 do
      let c = String.unsafe_get line j in
      if c = ',' then begin
        if !len = 0 || !len > 18 then ok := false;
        arr.(!idx) <- !v;
        incr idx;
        v := 0;
        len := 0
      end
      else
        let d = Char.code c - 48 in
        if d < 0 || d > 9 then ok := false
        else begin
          v := (!v * 10) + d;
          incr len
        end
    done;
    if !len = 0 || !len > 18 then ok := false else arr.(!idx) <- !v;
    if !ok then Some (Vec.of_array arr) else None
  end

let slow_parse t line =
  match tokenize line with
  | [ "ARRIVE"; time; id; sizes ] -> (
      match parse_arrive ~time ~id ~sizes () with
      | Ok (tenant, time, item_id, size) ->
          let* session = get_session t tenant in
          Ok (P_arrive { tenant; session; time; item_id; size })
      | Error _ as e -> e)
  | [ "ARRIVE"; tenant; time; id; sizes ] -> (
      match parse_arrive ~tenant ~time ~id ~sizes () with
      | Ok (tenant, time, item_id, size) ->
          let* session = get_session t tenant in
          Ok (P_arrive { tenant; session; time; item_id; size })
      | Error _ as e -> e)
  | "ARRIVE" :: _ -> Error arrive_usage
  | [ "DEPART"; time; id ] -> (
      match parse_depart ~time ~id () with
      | Ok (tenant, time, item_id) ->
          let* session = get_session t tenant in
          Ok (P_depart { tenant; session; time; item_id })
      | Error _ as e -> e)
  | [ "DEPART"; tenant; time; id ] -> (
      match parse_depart ~tenant ~time ~id () with
      | Ok (tenant, time, item_id) ->
          let* session = get_session t tenant in
          Ok (P_depart { tenant; session; time; item_id })
      | Error _ as e -> e)
  | "DEPART" :: _ -> Error depart_usage
  | _ -> Error "empty request"

let process_run t lines (replies : (string * bool) array) ~lo ~hi =
  let jobs = t.config.jobs in
  let run_t0 = Metrics.now t.obs in
  let n = hi - lo in
  let prep = Array.make n P_none in
  let arrives = ref 0 in
  let starts = Array.make 6 0 and stops = Array.make 6 0 in
  (* prep: parse + tenant resolution on the calling domain (session
     creation mutates the tenant table, which workers only read) *)
  for k = 0 to n - 1 do
    let line = lines.(lo + k) in
    t.requests <- t.requests + 1;
    let nf = scan_fields line starts stops in
    (* every line the caller routes here starts with ARRIVE or DEPART *)
    let arrive = nf > 0 && field_is line starts.(0) stops.(0) "ARRIVE" in
    if arrive then incr arrives;
    Metrics.on_request t.obs (if arrive then Metrics.Arrive else Metrics.Depart);
    let fast =
      (* tenant field present iff one extra token *)
      let want = if arrive then 4 else 3 in
      if nf <> want && nf <> want + 1 then None
      else begin
        let base = if nf = want then 1 else 2 in
        let tenant =
          if nf = want then Some Tenant.default
          else
            let s = String.sub line starts.(1) (stops.(1) - starts.(1)) in
            match Tenant.validate s with Ok tn -> Some tn | Error _ -> None
        in
        match tenant with
        | None -> None
        | Some tenant -> (
            let item_id = parse_uint line starts.(base + 1) stops.(base + 1) in
            if item_id < 0 then None
            else
              match
                float_of_string
                  (String.sub line starts.(base) (stops.(base) - starts.(base)))
              with
              | exception _ -> None
              | time -> (
                  match get_session t tenant with
                  | Error _ -> None
                  | Ok session ->
                      if not arrive then
                        Some (Ok (P_depart { tenant; session; time; item_id }))
                      else
                        parse_sizes_fast line starts.(base + 2) stops.(base + 2)
                        |> Option.map (fun size ->
                               Ok (P_arrive { tenant; session; time; item_id; size }))))
      end
    in
    let parsed = match fast with Some p -> p | None -> slow_parse t line in
    match parsed with
    | Ok p -> prep.(k) <- p
    | Error msg -> replies.(lo + k) <- err t msg
  done;
  (* apply: shard by tenant, workers write disjoint slots *)
  let results = Array.make n A_none in
  if jobs <= 1 then
    for k = 0 to n - 1 do
      apply_prepped prep results k
    done
  else begin
    let buckets = Array.make jobs [] in
    for k = n - 1 downto 0 do
      match prep.(k) with
      | P_none -> ()
      | p ->
          let s = prep_shard p mod jobs in
          buckets.(s) <- k :: buckets.(s)
    done;
    ignore
      (Dvbp_parallel.Parallel.map_array ~jobs
         (fun idxs -> List.iter (fun k -> apply_prepped prep results k) idxs)
         buckets)
  end;
  (* commit: journal applied events in arrival order, then release *)
  let staged_rev = ref [] in
  for k = 0 to n - 1 do
    match results.(k) with
    | A_none -> ()
    | A_err msg -> replies.(lo + k) <- err t msg
    | A_reject msg ->
        t.rejections <- t.rejections + 1;
        replies.(lo + k) <- (Printf.sprintf "REJECT %s" msg, false)
    | A_placed (reply, e) ->
        t.placements <- t.placements + 1;
        staged_rev := e :: !staged_rev;
        t.history_rev <- e :: t.history_rev;
        t.events <- t.events + 1;
        t.since_snapshot <- t.since_snapshot + 1;
        replies.(lo + k) <- (reply, false)
    | A_departed e ->
        t.departures <- t.departures + 1;
        staged_rev := e :: !staged_rev;
        t.history_rev <- e :: t.history_rev;
        t.events <- t.events + 1;
        t.since_snapshot <- t.since_snapshot + 1;
        replies.(lo + k) <- ("OK", false)
  done;
  flush_staged t !staged_rev ~waiters:n;
  Metrics.set_compaction_lag t.obs t.since_snapshot;
  maybe_auto_snapshot t;
  if not (Metrics.is_noop t.obs) then begin
    (* batch latency: every line in the run waited for the same commit,
       so each observes the run's full prep+apply+commit wall time — one
       bulk bucket update per kind and per tenant, not one per line *)
    let seconds = Metrics.now t.obs -. run_t0 in
    let per_tenant = Hashtbl.create 8 in
    for k = 0 to n - 1 do
      match prep.(k) with
      | P_none -> ()
      | P_arrive { tenant; _ } | P_depart { tenant; _ } ->
          Hashtbl.replace per_tenant tenant
            (1 + Option.value (Hashtbl.find_opt per_tenant tenant) ~default:0)
    done;
    Metrics.observe_request_n t.obs Metrics.Arrive ~seconds !arrives;
    Metrics.observe_request_n t.obs Metrics.Depart ~seconds (n - !arrives);
    Hashtbl.iter
      (fun tenant k -> Metrics.observe_tenant_request_n t.obs ~tenant ~seconds k)
      per_tenant
  end

let is_event_line line =
  match Metrics.kind_of_line line with
  | Metrics.Arrive | Metrics.Depart -> true
  | _ -> false

let handle_batch t lines =
  let n = Array.length lines in
  let replies = Array.make n ("", false) in
  let i = ref 0 in
  while !i < n do
    if is_event_line lines.(!i) then begin
      let j = ref !i in
      while !j < n && is_event_line lines.(!j) do incr j done;
      process_run t lines replies ~lo:!i ~hi:!j;
      i := !j
    end
    else begin
      (* control lines run between commits, so SNAPSHOT always sees every
         staged record flushed *)
      let t0 = Metrics.now t.obs in
      let kind = Metrics.kind_of_line lines.(!i) in
      replies.(!i) <- handle_line t lines.(!i);
      Metrics.observe_request t.obs kind ~seconds:(Metrics.now t.obs -. t0);
      incr i
    end
  done;
  replies

let close t =
  if not t.closed then begin
    (match t.journal with Some w -> Journal.close w | None -> ());
    t.closed <- true
  end

let serve t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let kind = Metrics.kind_of_line line in
        let t0 = Metrics.now t.obs in
        let reply, quit = handle_line t line in
        Metrics.observe_request t.obs kind ~seconds:(Metrics.now t.obs -. t0);
        output_string oc reply;
        output_char oc '\n';
        flush oc;
        (* the event loop steps compaction between select ticks; the
           blocking loop's equivalent beat is one step per request *)
        compaction_step t;
        if not quit then loop ()
  in
  Fun.protect ~finally:(fun () -> close t) loop
