(** Multi-tenant line-protocol request handling around
    {!Dvbp_engine.Session} — one isolated packing session per tenant.

    Requests, one per line (fields space-separated, sizes comma-separated).
    Event commands take an optional leading tenant name (from
    [A-Za-z0-9_.-], see {!Tenant}); the un-prefixed form is the
    {!Tenant.default} tenant, so pre-tenant clients and scripts keep
    working unchanged (the two grammars are told apart by token count):

    {v
    ARRIVE [tenant] <t> <id> <s1,...,sd>
                                  ->  PLACED <bin> <1|0>   (1 = opened new bin)
                                  |   REJECT <reason>      (session refused it)
    DEPART [tenant] <t> <id>      ->  OK
    STATS                         ->  STATS k=v k=v ...    (aggregated over tenants)
    METRICS                       ->  Prometheus-style text, final line "# EOF"
    SNAPSHOT                      ->  OK snapshot <path> events=<n>
    QUIT                          ->  BYE
    anything else                 ->  ERR <msg>
    v}

    [METRICS] is the only multi-line reply; clients read until the
    [# EOF] terminator line. The metric families it carries are
    documented name-by-name in [OPERATIONS.md].

    Per-request error isolation: a malformed request answers [ERR] and the
    loop keeps serving; an arrival the session refuses (oversized item,
    duplicate id, non-monotonic time, ...) answers [REJECT] and the loop
    keeps serving. Only IO failures escape. Tenants are isolated: each has
    its own bins, clock, and policy rng ({!Tenant.rng}), and item ids /
    time monotonicity are per-tenant.

    Durability comes in two strengths:
    - {!handle_line} (the blocking {!serve} loop): applied events are
      journaled and the fsync follows the [fsync_every] cadence, so an
      acked event can be lost to a power cut within the cadence window;
    - {!handle_batch} (the {!Event_loop} path): {b group commit} — every
      applied event in the batch is journaled and fsynced {e before} the
      replies are released, so an acked event is always durable. One fsync
      covers up to [fsync_every] records (the per-batch ceiling), which is
      what makes the multi-client path both stronger {e and} faster.

    When [snapshot_every = Some n], a snapshot is taken (and the journal
    truncated) every [n] applied events — exactly at the event on the
    streaming path, at the next run boundary on the batch path. *)

type config = {
  policy : string;  (** short name for [Policy.of_name] *)
  seed : int;  (** root rng seed; each tenant derives its own ({!Tenant.rng}) *)
  capacity : Dvbp_vec.Vec.t;
  journal : string option;  (** no journaling when [None] *)
  snapshot : string option;  (** required for [SNAPSHOT] / [snapshot_every] *)
  snapshot_every : int option;  (** auto-snapshot every [n] applied events *)
  fsync_every : int;
      (** streaming path: journal fsync cadence; batch path: per-batch
          ceiling — one group commit never spans more records than this *)
  jobs : int;  (** tenant shards for {!handle_batch} (1 = no domains) *)
  segment_bytes : int option;
      (** journal segment roll threshold in bytes (default 1 MiB); an
          append that carries the active segment past it seals the segment
          and opens the next *)
  retain_segments : int option;
      (** online compaction trigger: when more than this many {e sealed}
          segments are on disk, the event loop snapshots and retires the
          covered ones ({!compaction_step}). [None] disables compaction.
          Requires journal and snapshot paths. *)
}

type t

type metrics = {
  requests : int;  (** lines handled, including malformed ones *)
  placements : int;
  rejections : int;
  departures : int;
  errors : int;  (** [ERR] replies *)
  snapshots : int;
  events : int;  (** applied events (placements + departures) since genesis *)
}

val create : ?io:Io.t -> ?metrics:Metrics.t -> config -> (t, string) result
(** Fresh server: a {!Tenant.default} session, fresh journal (truncates an
    existing file — use {!resume} to continue one). Other tenant sessions
    are created on first contact. [io] (default {!Real_io.v}) is the
    backend journal and snapshot writes go through. [metrics] (default a
    fresh {!Metrics.create}) receives all instrumentation; pass
    {!Metrics.noop} to disable it (the sim sweeps do).
    Errors on an unknown policy or an invalid
    [snapshot_every]/[fsync_every]/[jobs] combination. *)

val resume : ?io:Io.t -> ?metrics:Metrics.t -> config -> Recovery.state -> (t, string) result
(** Continue serving from a recovered state (all tenant sessions). The
    config must agree with the recovered policy/seed/capacity; the journal
    is re-opened for appending (validating its header) rather than
    truncated. Metric counters restart from zero except [events], which
    counts from genesis (the engine pull family reflects the recovered
    sessions, so replayed events are counted once, not twice). *)

val handle_line : t -> string -> string * bool
(** [handle_line t line] is [(reply, quit)]; [quit] is true only for QUIT.
    Exposed for in-process drivers ({!Loadgen}) and tests. Streaming
    durability (fsync cadence), like {!serve}. *)

val handle_batch : t -> string array -> (string * bool) array
(** Group commit: handles every line (arrival order across connections —
    slot [i] answers line [i]) and returns only after all applied events
    are journaled {e and fsynced}, in chunks of at most [fsync_every]
    records each. Event lines are applied sharded by
    tenant over [config.jobs] domains; per-tenant results are
    bit-identical for any [jobs]. Control lines (STATS, SNAPSHOT, QUIT,
    malformed input) are handled between commits on the calling domain. *)

val serve : t -> in_channel -> out_channel -> unit
(** Read-eval-reply until QUIT or EOF, then {!close}. Replies are flushed
    per request. Per-request handling latency is recorded into the
    per-kind request histograms (see {!latency_summary}). *)

val metrics : t -> metrics
val stats_line : t -> string
(** The [STATS] reply. Its field list and order are frozen for backward
    compatibility; the engine fields aggregate across tenants (sums;
    [clock] is the max). Richer telemetry lives in the [METRICS] reply. *)

val latency_summary : t -> Dvbp_obs.Histogram.snapshot
(** Request-handling latency in seconds, all request kinds merged
    (populated by {!serve} and {!handle_batch}; empty for in-process
    {!handle_line} drivers). *)

val observability : t -> Metrics.t
(** The metrics bundle this server reports into (the one passed to
    {!create}/{!resume}, or the default it built). *)

val session : t -> Dvbp_engine.Session.t
(** The {!Tenant.default} tenant's session (always present). Read-only
    access for tests and reporting. *)

val sessions : t -> (string * Dvbp_engine.Session.t) list
(** All tenant sessions in first-appearance order ({!Tenant.default}
    first). Read-only access for tests and reporting. *)

val take_snapshot : t -> (string, string) result
(** What the [SNAPSHOT] command runs: write a {!Snapshot} of every tenant
    and truncate the journal. Exposed for drivers. *)

(** {1 Online compaction}

    A compaction pass bounds journal disk usage without stopping the
    world: snapshot the current frontier (making every record at or below
    it redundant), then unlink the sealed segments the snapshot covers, a
    few files per step. The active segment is never touched, so appends
    and group commits proceed throughout. *)

val compaction_pending : t -> bool
(** Whether {!compaction_step} has work: a pass is mid-flight, or the
    sealed-segment count exceeds [retain_segments]. The event loop polls
    this to keep its select timeout at zero while compacting. *)

val compaction_step : t -> unit
(** One bounded unit of compaction: either start a pass (write the
    snapshot, remember the frontier) or retire up to a handful of covered
    sealed segments. No-op when nothing is pending. Called by
    {!Event_loop} once per tick, between request batches. *)

val compact : t -> (string * int, string) result
(** Synchronous whole pass (the [dvbp compact] command and the sim's
    [Compact] action): snapshot, then retire {e all} covered sealed
    segments at once. Returns the snapshot path and the number of segments
    retired. Unlike {!take_snapshot} this never truncates the active
    segment — the journal keeps its tail. Errors when no snapshot or no
    journal path is configured. *)

val close : t -> unit
(** Syncs and closes the journal. Idempotent. *)
