(** Blocking line-protocol request loop around {!Dvbp_engine.Session}.

    Requests, one per line (fields space-separated, sizes comma-separated):

    {v
    ARRIVE <t> <id> <s1,...,sd>   ->  PLACED <bin> <1|0>   (1 = opened new bin)
                                  |   REJECT <reason>      (session refused it)
    DEPART <t> <id>               ->  OK
    STATS                         ->  STATS k=v k=v ...
    METRICS                       ->  Prometheus-style text, final line "# EOF"
    SNAPSHOT                      ->  OK snapshot <path> events=<n>
    QUIT                          ->  BYE
    anything else                 ->  ERR <msg>
    v}

    [METRICS] is the only multi-line reply; clients read until the
    [# EOF] terminator line. The metric families it carries are
    documented name-by-name in [OPERATIONS.md].

    Per-request error isolation: a malformed request answers [ERR] and the
    loop keeps serving; an arrival the session refuses (oversized item,
    duplicate id, non-monotonic time, ...) answers [REJECT] and the loop
    keeps serving. Only IO failures escape.

    Durability: applied events are journaled {e before} the reply is
    written, so any placement a client has seen is recoverable. When
    [snapshot_every = Some n], a snapshot is taken (and the journal
    truncated) every [n] applied events, also before the reply. *)

type config = {
  policy : string;  (** short name for [Policy.of_name] *)
  seed : int;  (** rng seed (Random Fit); recorded in the journal header *)
  capacity : Dvbp_vec.Vec.t;
  journal : string option;  (** no journaling when [None] *)
  snapshot : string option;  (** required for [SNAPSHOT] / [snapshot_every] *)
  snapshot_every : int option;  (** auto-snapshot every [n] applied events *)
  fsync_every : int;  (** journal fsync batch size *)
}

type t

type metrics = {
  requests : int;  (** lines handled, including malformed ones *)
  placements : int;
  rejections : int;
  departures : int;
  errors : int;  (** [ERR] replies *)
  snapshots : int;
  events : int;  (** applied events (placements + departures) since genesis *)
}

val create : ?io:Io.t -> ?metrics:Metrics.t -> config -> (t, string) result
(** Fresh server: empty session, fresh journal (truncates an existing file —
    use {!resume} to continue one). [io] (default {!Real_io.v}) is the
    backend journal and snapshot writes go through. [metrics] (default a
    fresh {!Metrics.create}) receives all instrumentation; pass
    {!Metrics.noop} to disable it (the sim sweeps do).
    Errors on an unknown policy, an invalid [snapshot_every]/[fsync_every],
    or [snapshot_every] without a snapshot path. *)

val resume : ?io:Io.t -> ?metrics:Metrics.t -> config -> Recovery.state -> (t, string) result
(** Continue serving from a recovered state. The config must agree with the
    recovered policy/seed/capacity; the journal is re-opened for appending
    (validating its header) rather than truncated. Metric counters restart
    from zero except [events], which counts from genesis (the engine pull
    family reflects the recovered session, so replayed events are counted
    once, not twice). *)

val handle_line : t -> string -> string * bool
(** [handle_line t line] is [(reply, quit)]; [quit] is true only for QUIT.
    Exposed for in-process drivers ({!Loadgen}) and tests. *)

val serve : t -> in_channel -> out_channel -> unit
(** Read-eval-reply until QUIT or EOF, then {!close}. Replies are flushed
    per request. Per-request handling latency is recorded into the
    per-kind request histograms (see {!latency_summary}). *)

val metrics : t -> metrics
val stats_line : t -> string
(** The [STATS] reply. Its field list and order are frozen for
    backward compatibility ([latency_mean_us]/[latency_max_us] are now
    computed from the request histograms); richer telemetry lives in the
    [METRICS] reply. *)

val latency_summary : t -> Dvbp_obs.Histogram.snapshot
(** Request-handling latency in seconds, all request kinds merged
    (populated by {!serve}; empty for in-process {!handle_line}
    drivers). *)

val observability : t -> Metrics.t
(** The metrics bundle this server reports into (the one passed to
    {!create}/{!resume}, or the default it built). *)

val session : t -> Dvbp_engine.Session.t
(** Read-only access for tests and reporting. *)

val close : t -> unit
(** Syncs and closes the journal. Idempotent. *)
