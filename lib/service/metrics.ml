module R = Dvbp_obs.Registry
module Histogram = Dvbp_obs.Histogram

type kind = Arrive | Depart | Stats | Snapshot | Metrics | Other

let kind_index = function
  | Arrive -> 0
  | Depart -> 1
  | Stats -> 2
  | Snapshot -> 3
  | Metrics -> 4
  | Other -> 5

let kind_name = function
  | Arrive -> "arrive"
  | Depart -> "depart"
  | Stats -> "stats"
  | Snapshot -> "snapshot"
  | Metrics -> "metrics"
  | Other -> "other"

let all_kinds = [ Arrive; Depart; Stats; Snapshot; Metrics; Other ]

let kind_of_line line =
  let n = String.length line in
  let stop = ref 0 in
  while !stop < n && line.[!stop] <> ' ' && line.[!stop] <> '\r' do incr stop done;
  match String.sub line 0 !stop with
  | "ARRIVE" -> Arrive
  | "DEPART" -> Depart
  | "STATS" -> Stats
  | "SNAPSHOT" -> Snapshot
  | "METRICS" -> Metrics
  | _ -> Other

type t = {
  reg : R.t;
  j_appends : R.Counter.t;
  j_bytes : R.Counter.t;
  j_fsyncs : R.Counter.t;
  j_fsync_seconds : Histogram.t;
  j_truncates : R.Counter.t;
  j_heals : R.Counter.t;
  j_batch_size : R.Histo.t;
  j_seals : R.Counter.t;
  j_retired : R.Counter.t;
  j_retired_bytes : R.Counter.t;
  j_live_segments : R.Gauge.t;
  j_live_bytes : R.Gauge.t;
  compactions : R.Counter.t;
  compaction_seconds : Histogram.t;
  compaction_lag : R.Gauge.t;
  gc_waiters : R.Gauge.t;
  req_total : R.Counter.t array;  (* indexed by kind *)
  req_seconds : Histogram.t array;
  journal_append_seconds : Histogram.t;
  snapshot_seconds : Histogram.t;
  repack_migration_seconds : Histogram.t;
  (* per-tenant request instruments, created on a tenant's first event
     request (label cardinality = live tenants, bounded by the workload) *)
  tenant_req : (string, R.Counter.t * R.Histo.t) Hashtbl.t;
}

let build reg =
  let j_appends =
    R.Counter.make reg "dvbp_journal_records_appended_total"
      ~help:"Records appended to the journal by this process"
  in
  let j_bytes =
    R.Counter.make reg "dvbp_journal_bytes_written_total"
      ~help:"Journal record bytes written (including newlines)"
  in
  let j_fsyncs =
    R.Counter.make reg "dvbp_journal_fsyncs_total" ~help:"fsync(2) calls on the journal"
  in
  let j_fsync_seconds =
    R.Histo.make reg "dvbp_journal_fsync_seconds" ~help:"Latency of journal fsync calls"
  in
  let j_truncates =
    R.Counter.make reg "dvbp_journal_truncates_total"
      ~help:"Journal truncations (one per snapshot over a journaled server)"
  in
  let j_heals =
    R.Counter.make reg "dvbp_journal_torn_heals_total"
      ~help:"Torn or unterminated journal tails healed on open"
  in
  let j_batch_size =
    R.Histo.make reg "dvbp_journal_batch_size"
      ~help:"Records per group-commit batch (one fsync each)"
  in
  let j_seals =
    R.Counter.make reg "dvbp_journal_segments_sealed_total"
      ~help:"Journal segments sealed (footer written, renamed .seg)"
  in
  let j_retired =
    R.Counter.make reg "dvbp_journal_segments_retired_total"
      ~help:"Sealed segments unlinked by compaction"
  in
  let j_retired_bytes =
    R.Counter.make reg "dvbp_journal_retired_bytes_total"
      ~help:"Disk bytes reclaimed by retiring sealed segments"
  in
  let j_live_segments =
    R.Gauge.make reg "dvbp_journal_segments"
      ~help:"Live journal segment files (active included)"
  in
  let j_live_bytes =
    R.Gauge.make reg "dvbp_journal_live_bytes"
      ~help:"Total bytes across live journal segment files"
  in
  let compactions =
    R.Counter.make reg "dvbp_server_compactions_total"
      ~help:"Completed compaction passes (snapshot + segment retirement)"
  in
  let compaction_seconds =
    R.Histo.make reg "dvbp_server_compaction_seconds"
      ~help:"Wall time of a compaction pass, snapshot to last retire"
  in
  let compaction_lag =
    R.Gauge.make reg "dvbp_server_compaction_lag_events"
      ~help:"Events applied since the last durable snapshot frontier"
  in
  let gc_waiters =
    R.Gauge.make reg "dvbp_journal_group_commit_waiters"
      ~help:"Replies staged behind the in-flight group commit"
  in
  let req_total =
    Array.of_list
      (List.map
         (fun k ->
           R.Counter.make reg "dvbp_server_requests_total"
             ~help:"Protocol lines handled, by request kind"
             ~labels:[ ("kind", kind_name k) ])
         all_kinds)
  in
  let req_seconds =
    Array.of_list
      (List.map
         (fun k ->
           R.Histo.make reg "dvbp_server_request_seconds"
             ~help:"End-to-end request handling latency, by request kind"
             ~labels:[ ("kind", kind_name k) ])
         all_kinds)
  in
  let journal_append_seconds =
    R.Histo.make reg "dvbp_server_journal_append_seconds"
      ~help:"Journal-before-reply write latency per applied event"
  in
  let snapshot_seconds =
    R.Histo.make reg "dvbp_server_snapshot_seconds"
      ~help:"Snapshot write latency (manual and auto)"
  in
  let repack_migration_seconds =
    R.Histo.make reg "dvbp_repack_migration_seconds"
      ~help:"Wall time attributed to one committed live migration"
  in
  {
    reg;
    j_appends;
    j_bytes;
    j_fsyncs;
    j_fsync_seconds;
    j_truncates;
    j_heals;
    j_batch_size;
    j_seals;
    j_retired;
    j_retired_bytes;
    j_live_segments;
    j_live_bytes;
    compactions;
    compaction_seconds;
    compaction_lag;
    gc_waiters;
    req_total;
    req_seconds;
    journal_append_seconds;
    snapshot_seconds;
    repack_migration_seconds;
    tenant_req = Hashtbl.create 16;
  }

let create ?(clock = Unix.gettimeofday) () = build (R.create ~clock ())
let noop () = build (R.noop ())
let is_noop t = R.is_noop t.reg
let registry t = t.reg
let now t = R.now t.reg

let on_append t ~bytes =
  R.Counter.incr t.j_appends;
  R.Counter.add t.j_bytes bytes

let on_append_batch t ~records ~bytes =
  R.Counter.add t.j_appends records;
  R.Counter.add t.j_bytes bytes;
  if not (R.is_noop t.reg) then
    Histogram.observe t.j_batch_size (float_of_int records)

let set_group_commit_waiters t n = R.Gauge.set t.gc_waiters (float_of_int n)

let time_fsync t f =
  if R.is_noop t.reg then f ()
  else begin
    let t0 = R.now t.reg in
    f ();
    Histogram.observe t.j_fsync_seconds (R.now t.reg -. t0);
    R.Counter.incr t.j_fsyncs
  end

let on_truncate t = R.Counter.incr t.j_truncates
let on_heal t = R.Counter.incr t.j_heals
let on_seal t = R.Counter.incr t.j_seals

let on_retire t ~segments ~bytes =
  R.Counter.add t.j_retired segments;
  R.Counter.add t.j_retired_bytes bytes

let set_journal_live t ~segments ~bytes =
  R.Gauge.set t.j_live_segments (float_of_int segments);
  R.Gauge.set t.j_live_bytes (float_of_int bytes)

let on_compaction t ~seconds =
  R.Counter.incr t.compactions;
  if not (R.is_noop t.reg) then Histogram.observe t.compaction_seconds seconds

let set_compaction_lag t events = R.Gauge.set t.compaction_lag (float_of_int events)
let on_request t kind = R.Counter.incr t.req_total.(kind_index kind)

let observe_request t kind ~seconds =
  if not (R.is_noop t.reg) then Histogram.observe t.req_seconds.(kind_index kind) seconds

let observe_request_n t kind ~seconds k =
  if k > 0 && not (R.is_noop t.reg) then
    Histogram.observe_n t.req_seconds.(kind_index kind) seconds k

let time_journal_append t f =
  if R.is_noop t.reg then f ()
  else begin
    let t0 = R.now t.reg in
    let r = f () in
    Histogram.observe t.journal_append_seconds (R.now t.reg -. t0);
    r
  end

let time_snapshot t f =
  if R.is_noop t.reg then f ()
  else begin
    let t0 = R.Span.enter t.reg "snapshot" in
    let r = f () in
    R.Span.exit t.reg "snapshot" t0;
    Histogram.observe t.snapshot_seconds (R.now t.reg -. t0);
    r
  end

let request_summary t =
  Histogram.snapshot (Array.fold_left Histogram.merge (Histogram.create ()) t.req_seconds)

(* Per-tenant instruments are registered on the tenant's first event and
   memoized — [Registry] treats re-registering a (name, labels) pair as a
   programming error, so the Hashtbl is the single registration site. *)
let tenant_instruments t tenant =
  match Hashtbl.find_opt t.tenant_req tenant with
  | Some pair -> pair
  | None ->
      let labels = [ ("tenant", tenant) ] in
      let c =
        R.Counter.make t.reg "dvbp_server_tenant_requests_total"
          ~help:"Event requests handled, by tenant" ~labels
      in
      let h =
        R.Histo.make t.reg "dvbp_server_tenant_request_seconds"
          ~help:"Event request handling latency, by tenant" ~labels
      in
      Hashtbl.add t.tenant_req tenant (c, h);
      (c, h)

let observe_tenant_request t ~tenant ~seconds =
  if not (R.is_noop t.reg) then begin
    let c, h = tenant_instruments t tenant in
    R.Counter.incr c;
    Histogram.observe h seconds
  end

let observe_tenant_request_n t ~tenant ~seconds k =
  if k > 0 && not (R.is_noop t.reg) then begin
    let c, h = tenant_instruments t tenant in
    R.Counter.add c k;
    Histogram.observe_n h seconds k
  end

let attach_session t ?tenant ~policy session =
  if not (R.is_noop t.reg) then begin
    let module S = Dvbp_engine.Session in
    let labels =
      match tenant with
      | Some name when name <> Tenant.default -> [ ("policy", policy); ("tenant", name) ]
      | _ -> [ ("policy", policy) ]
    in
    let counter name help f = R.Counter.pull t.reg name ~help ~labels f in
    let gauge name help f = R.Gauge.pull t.reg name ~help ~labels f in
    counter "dvbp_engine_placements_total" "Successful arrivals placed" (fun () ->
        S.placements session);
    counter "dvbp_engine_departures_total" "Successful departures" (fun () ->
        S.departures session);
    counter "dvbp_engine_rejects_total" "Events refused with Session_error" (fun () ->
        S.rejects session);
    counter "dvbp_engine_bins_opened_total" "Bins opened since session start" (fun () ->
        S.bins_opened session);
    counter "dvbp_engine_bins_closed_total" "Bins opened and since closed" (fun () ->
        S.bins_closed session);
    gauge "dvbp_engine_open_bins" "Currently open bins" (fun () ->
        float_of_int (S.open_bin_count session));
    gauge "dvbp_engine_active_items" "Items placed and not yet departed" (fun () ->
        float_of_int (S.active_items session));
    gauge "dvbp_engine_max_open_bins" "Peak simultaneously open bins" (fun () ->
        float_of_int (S.max_open_bins session));
    gauge "dvbp_engine_clock" "Session clock (workload time)" (fun () -> S.now session);
    gauge "dvbp_engine_cost_bin_seconds" "Accumulated MinUsageTime cost" (fun () ->
        S.cost_so_far session);
    counter "dvbp_engine_fit_scans_total" "Fit scans over the open-bin registry"
      (fun () -> (S.scan_stats session).Dvbp_core.Bin_registry.scans);
    counter "dvbp_engine_fit_scan_candidates_total"
      "Open-bin slots examined across all fit scans" (fun () ->
        (S.scan_stats session).Dvbp_core.Bin_registry.candidates);
    counter "dvbp_engine_recheck_memo_hits_total"
      "Any-Fit conformance rechecks answered by the miss memo" (fun () ->
        (S.scan_stats session).Dvbp_core.Bin_registry.memo_hits);
    (* info-style gauge: constant 1, the kernel lives in the label, so a
       scrape can tell which fit kernel the registry selected at create *)
    let kernel_labels = ("kernel", S.fit_kernel session) :: labels in
    R.Gauge.pull t.reg "dvbp_engine_fit_kernel_info"
      ~help:"Fit-scan kernel selected at session create (swar or scalar)"
      ~labels:kernel_labels
      (fun () -> 1.0)
  end

let observe_migration t ~seconds =
  if not (R.is_noop t.reg) then Histogram.observe t.repack_migration_seconds seconds

let attach_repack t ~policy repack =
  if not (R.is_noop t.reg) then begin
    let module Rp = Dvbp_engine.Repack in
    let labels = [ ("policy", policy) ] in
    let counter name help f =
      R.Counter.pull t.reg name ~help ~labels (fun () -> f (Rp.stats repack))
    in
    counter "dvbp_repack_migrations_total" "Items live-migrated between bins"
      (fun s -> s.Rp.migrations);
    counter "dvbp_repack_migration_events_total"
      "Events that committed at least one migration" (fun s -> s.Rp.migration_events);
    counter "dvbp_repack_bins_emptied_total"
      "Bins drained empty and closed early by migration" (fun s -> s.Rp.drained_bins);
    counter "dvbp_repack_consolidations_total"
      "Arrivals placed by eviction instead of opening a fresh bin" (fun s ->
        s.Rp.consolidations);
    counter "dvbp_repack_budget_exhausted_total"
      "Migration opportunities declined only because the budget was too small"
      (fun s -> s.Rp.budget_exhausted)
  end

let render_text t = R.render ~spans:true t.reg ^ "# EOF"
