(** Tenant identity: naming rules, stable hashing, and per-tenant rng.

    A tenant is a named, isolated packing session inside one server: its
    own bins, its own clock, its own policy rng stream. The protocol
    addresses tenants by name ([ARRIVE <tenant> <t> <id> <sizes>]); the
    un-prefixed grammar maps to the {!default} tenant, so pre-tenant
    clients and journals keep working unchanged.

    Everything here is a pure function of the tenant {e name}, never of
    arrival order or process state — a recovered server must re-derive
    identical shard and rng assignments from the journal alone, even when
    a rejected (and therefore unjournaled) request was the tenant's first
    contact. *)

val default : string
(** ["default"] — the tenant the un-prefixed v1 grammar maps to. *)

val max_length : int

val is_valid : string -> bool
(** 1-{!max_length} characters from [A-Za-z0-9_.-]. The charset keeps
    tenant names safe inside both the space-separated protocol and the
    comma-separated journal records. *)

val validate : string -> (string, string) result

val hash : string -> int
(** FNV-1a folded to a non-negative int; stable across runs and compiler
    versions (it is part of the durability contract). *)

val shard : jobs:int -> string -> int
(** Which of [jobs] shards serves this tenant ([0] when [jobs <= 1]).
    All of a tenant's requests land on one shard, so per-tenant packing
    order is independent of the shard count. *)

val rng : seed:int -> string -> Dvbp_prelude.Rng.t
(** The tenant's policy rng. The {!default} tenant is exactly
    [Rng.create ~seed] (bit-compatible with pre-tenant servers and v1
    journals); other tenants are independent splits keyed by {!hash}. *)
