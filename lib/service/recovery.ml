module Vec = Dvbp_vec.Vec
module Rng = Dvbp_prelude.Rng
module Policy = Dvbp_core.Policy
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item
module Session = Dvbp_engine.Session

type state = {
  session : Session.t;
  policy : string;
  seed : int;
  capacity : Vec.t;
  history : Journal.event list;
  from_snapshot : int;
  from_journal : int;
  dropped_torn : bool;
}

let ( let* ) = Result.bind

let apply_one session ~policy_name ~index = function
  | Journal.Arrive { time; item_id; size; bin_id; opened_new_bin } -> (
      match Session.arrive session ~at:time ~id:item_id ~size () with
      | exception Session.Session_error msg ->
          Error (Printf.sprintf "event %d (item %d at %g): replay failed: %s" index item_id time msg)
      | p ->
          if p.Session.bin_id <> bin_id || p.Session.opened_new_bin <> opened_new_bin
          then
            Error
              (Printf.sprintf
                 "event %d (item %d at %g): recorded placement bin %d new=%b, but \
                  policy %s recomputed bin %d new=%b — corrupt journal or \
                  policy/version mismatch"
                 index item_id time bin_id opened_new_bin policy_name p.Session.bin_id
                 p.Session.opened_new_bin)
          else Ok ())
  | Journal.Depart { time; item_id } -> (
      match Session.depart session ~at:time ~item_id with
      | exception Session.Session_error msg ->
          Error (Printf.sprintf "event %d (item %d at %g): replay failed: %s" index item_id time msg)
      | () -> Ok ())

let replay_into session ~policy_name ~first_index events =
  let rec go index = function
    | [] -> Ok ()
    | e :: rest ->
        let* () = apply_one session ~policy_name ~index e in
        go (index + 1) rest
  in
  go first_index events

let fresh_session ~policy ~seed ~capacity =
  match Policy.of_name ~rng:(Rng.create ~seed) policy with
  | Error e -> Error e
  | Ok p -> Ok (Session.create ~record_trace:false ~capacity ~policy:p ())

let replay ~policy ~seed ~capacity events =
  let* session = fresh_session ~policy ~seed ~capacity in
  let* () = replay_into session ~policy_name:policy ~first_index:0 events in
  Ok session

(* compare the rebuilt session against the snapshot's state digest *)
let check_digest session (s : Snapshot.t) =
  let fail fmt = Printf.ksprintf (fun m -> Error ("snapshot digest mismatch: " ^ m)) fmt in
  if Session.now session <> s.Snapshot.clock then
    fail "clock %.17g, snapshot says %.17g" (Session.now session) s.Snapshot.clock
  else if Session.cost_so_far session <> s.Snapshot.cost then
    fail "cost %.17g, snapshot says %.17g" (Session.cost_so_far session) s.Snapshot.cost
  else if Session.bins_opened session <> s.Snapshot.bins_opened then
    fail "bins_opened %d, snapshot says %d" (Session.bins_opened session)
      s.Snapshot.bins_opened
  else
    let live =
      List.map
        (fun (b : Bin.t) ->
          ( b.Bin.id,
            List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
            |> List.sort Int.compare ))
        (Session.open_bins session)
    in
    if live <> s.Snapshot.open_bins then
      let render bins =
        String.concat "; "
          (List.map
             (fun (b, occ) ->
               Printf.sprintf "bin %d{%s}" b
                 (String.concat "," (List.map string_of_int occ)))
             bins)
      in
      fail "open bins [%s], snapshot says [%s]" (render live) (render s.Snapshot.open_bins)
    else Ok ()

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let rec take n = function
  | _ when n <= 0 -> []
  | [] -> []
  | x :: rest -> x :: take (n - 1) rest

let recover ?(io = Real_io.v) ?snapshot ~journal () =
  let* j =
    Result.map_error (Printf.sprintf "%s: %s" journal) (Journal.read_file ~io journal)
  in
  let header = j.Journal.header in
  let* snap =
    match snapshot with
    | Some path when io.Io.file_exists path ->
        let* s = Snapshot.load ~io ~path () in
        Ok (Some s)
    | Some _ | None -> Ok None
  in
  match snap with
  | None ->
      if header.Journal.base <> 0 then
        Error
          (Printf.sprintf
             "%s: journal starts at event %d but no snapshot was found — the \
              snapshotted prefix is missing"
             journal header.Journal.base)
      else
        let* session =
          replay ~policy:header.Journal.policy ~seed:header.Journal.seed
            ~capacity:header.Journal.capacity j.Journal.events
        in
        Ok
          {
            session;
            policy = header.Journal.policy;
            seed = header.Journal.seed;
            capacity = header.Journal.capacity;
            history = j.Journal.events;
            from_snapshot = 0;
            from_journal = List.length j.Journal.events;
            dropped_torn = j.Journal.dropped_torn;
          }
  | Some s ->
      let* () =
        if s.Snapshot.policy <> header.Journal.policy then
          Error
            (Printf.sprintf "snapshot policy %s does not match journal policy %s"
               s.Snapshot.policy header.Journal.policy)
        else if s.Snapshot.seed <> header.Journal.seed then
          Error
            (Printf.sprintf "snapshot seed %d does not match journal seed %d"
               s.Snapshot.seed header.Journal.seed)
        else if not (Vec.equal s.Snapshot.capacity header.Journal.capacity) then
          Error
            (Printf.sprintf "snapshot capacity %s does not match journal capacity %s"
               (Vec.to_string s.Snapshot.capacity)
               (Vec.to_string header.Journal.capacity))
        else Ok ()
      in
      let snapshot_events = List.length s.Snapshot.history in
      if header.Journal.base > snapshot_events then
        Error
          (Printf.sprintf
             "journal starts at event %d but the snapshot only covers %d events — \
              records are missing"
             header.Journal.base snapshot_events)
      else begin
        (* journal records the snapshot already absorbed (a crash between
           snapshot write and journal truncation leaves them behind) must
           agree with the snapshot's history *)
        let overlap_len = snapshot_events - header.Journal.base in
        let overlap = take overlap_len j.Journal.events in
        let expected = drop header.Journal.base s.Snapshot.history in
        let expected = take (List.length overlap) expected in
        if not (List.equal Journal.equal_event overlap expected) then
          Error
            "journal records overlapping the snapshot differ from the snapshot's \
             history — mismatched files"
        else
          let suffix = drop overlap_len j.Journal.events in
          let* session =
            fresh_session ~policy:header.Journal.policy ~seed:header.Journal.seed
              ~capacity:header.Journal.capacity
          in
          let* () =
            replay_into session ~policy_name:header.Journal.policy ~first_index:0
              s.Snapshot.history
          in
          let* () = check_digest session s in
          let* () =
            replay_into session ~policy_name:header.Journal.policy
              ~first_index:snapshot_events suffix
          in
          Ok
            {
              session;
              policy = header.Journal.policy;
              seed = header.Journal.seed;
              capacity = header.Journal.capacity;
              history = s.Snapshot.history @ suffix;
              from_snapshot = snapshot_events;
              from_journal = List.length suffix;
              dropped_torn = j.Journal.dropped_torn;
            }
      end

let render st =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "recovered: policy=%s seed=%d capacity=%s\n" st.policy st.seed
       (Vec.to_string st.capacity));
  Buffer.add_string buf
    (Printf.sprintf "events: %d from snapshot + %d from journal = %d total%s\n"
       st.from_snapshot st.from_journal
       (st.from_snapshot + st.from_journal)
       (if st.dropped_torn then " (dropped a torn final journal record)" else ""));
  Buffer.add_string buf
    (Printf.sprintf "clock=%g cost=%.4f bins_opened=%d max_open=%d active_items=%d\n"
       (Session.now st.session)
       (Session.cost_so_far st.session)
       (Session.bins_opened st.session)
       (Session.max_open_bins st.session)
       (Session.active_items st.session));
  let open_bins = Session.open_bins st.session in
  Buffer.add_string buf (Printf.sprintf "open bins (%d):\n" (List.length open_bins));
  List.iter
    (fun (b : Bin.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  bin %d load=%s items=[%s]\n" b.Bin.id
           (Vec.to_string b.Bin.load)
           (String.concat ","
              (List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
              |> List.sort Int.compare |> List.map string_of_int))))
    open_bins;
  Buffer.contents buf
