module Vec = Dvbp_vec.Vec
module Policy = Dvbp_core.Policy
module Bin = Dvbp_core.Bin
module Item = Dvbp_core.Item
module Session = Dvbp_engine.Session

type state = {
  sessions : (string * Session.t) list;
  policy : string;
  seed : int;
  capacity : Vec.t;
  history : Journal.event list;
  from_snapshot : int;
  from_journal : int;
  dropped_torn : bool;
}

let ( let* ) = Result.bind

let fresh_session ~policy ~seed ~capacity ~tenant =
  match Policy.of_name ~rng:(Tenant.rng ~seed tenant) policy with
  | Error e -> Error e
  | Ok p -> Ok (Session.create ~record_trace:false ~capacity ~policy:p ())

(* Tenant sessions in first-appearance order. The default tenant is created
   eagerly so a recovered empty service matches what a fresh server holds. *)
type sessions = {
  tbl : (string, Session.t) Hashtbl.t;
  mutable order_rev : string list;
  policy : string;
  seed : int;
  capacity : Vec.t;
}

let make_sessions ~policy ~seed ~capacity =
  let s =
    { tbl = Hashtbl.create 8; order_rev = []; policy; seed; capacity }
  in
  let* default = fresh_session ~policy ~seed ~capacity ~tenant:Tenant.default in
  Hashtbl.add s.tbl Tenant.default default;
  s.order_rev <- [ Tenant.default ];
  Ok s

let session_for s tenant =
  match Hashtbl.find_opt s.tbl tenant with
  | Some session -> Ok session
  | None ->
      let* session =
        fresh_session ~policy:s.policy ~seed:s.seed ~capacity:s.capacity ~tenant
      in
      Hashtbl.add s.tbl tenant session;
      s.order_rev <- tenant :: s.order_rev;
      Ok session

let to_list s =
  List.rev_map (fun t -> (t, Hashtbl.find s.tbl t)) s.order_rev

let apply_one s ~policy_name ~index = function
  | Journal.Arrive { tenant; time; item_id; size; bin_id; opened_new_bin } -> (
      let* session = session_for s tenant in
      match Session.arrive session ~at:time ~id:item_id ~size () with
      | exception Session.Session_error msg ->
          Error (Printf.sprintf "event %d (item %d at %g): replay failed: %s" index item_id time msg)
      | p ->
          if p.Session.bin_id <> bin_id || p.Session.opened_new_bin <> opened_new_bin
          then
            Error
              (Printf.sprintf
                 "event %d (tenant %s, item %d at %g): recorded placement bin %d \
                  new=%b, but policy %s recomputed bin %d new=%b — corrupt \
                  journal or policy/version mismatch"
                 index tenant item_id time bin_id opened_new_bin policy_name
                 p.Session.bin_id p.Session.opened_new_bin)
          else Ok ())
  | Journal.Depart { tenant; time; item_id } -> (
      let* session = session_for s tenant in
      match Session.depart session ~at:time ~item_id with
      | exception Session.Session_error msg ->
          Error (Printf.sprintf "event %d (item %d at %g): replay failed: %s" index item_id time msg)
      | () -> Ok ())

let replay_into s ~policy_name ~first_index events =
  let rec go index = function
    | [] -> Ok ()
    | e :: rest ->
        let* () = apply_one s ~policy_name ~index e in
        go (index + 1) rest
  in
  go first_index events

let replay ~policy ~seed ~capacity events =
  let* s = make_sessions ~policy ~seed ~capacity in
  let* () = replay_into s ~policy_name:policy ~first_index:0 events in
  Ok (to_list s)

(* compare one rebuilt tenant session against its snapshot digest *)
let check_one_digest session (d : Snapshot.digest) =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Error (Printf.sprintf "snapshot digest mismatch (tenant %s): %s" d.Snapshot.tenant m))
      fmt
  in
  if Session.now session <> d.Snapshot.clock then
    fail "clock %.17g, snapshot says %.17g" (Session.now session) d.Snapshot.clock
  else if Session.cost_so_far session <> d.Snapshot.cost then
    fail "cost %.17g, snapshot says %.17g" (Session.cost_so_far session) d.Snapshot.cost
  else if Session.bins_opened session <> d.Snapshot.bins_opened then
    fail "bins_opened %d, snapshot says %d" (Session.bins_opened session)
      d.Snapshot.bins_opened
  else
    let live =
      List.map
        (fun (b : Bin.t) ->
          ( b.Bin.id,
            List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
            |> List.sort Int.compare ))
        (Session.open_bins session)
    in
    if live <> d.Snapshot.open_bins then
      let render bins =
        String.concat "; "
          (List.map
             (fun (b, occ) ->
               Printf.sprintf "bin %d{%s}" b
                 (String.concat "," (List.map string_of_int occ)))
             bins)
      in
      fail "open bins [%s], snapshot says [%s]" (render live)
        (render d.Snapshot.open_bins)
    else Ok ()

(* Every digest must match its rebuilt session (a digest for a tenant the
   history never touched is checked against a fresh zero-state session —
   the server snapshots sessions that exist but have applied nothing, e.g.
   a tenant whose only request was rejected), and every tenant the history
   touched must carry a digest. *)
let check_digests s (snap : Snapshot.t) =
  let rec each = function
    | [] -> Ok ()
    | (d : Snapshot.digest) :: rest ->
        let* session = session_for s d.Snapshot.tenant in
        let* () = check_one_digest session d in
        each rest
  in
  let* () = each snap.Snapshot.digests in
  let missing =
    List.filter
      (fun (tenant, _) -> Snapshot.find_digest snap tenant = None)
      (to_list s)
  in
  match missing with
  | [] -> Ok ()
  | (tenant, _) :: _ ->
      Error
        (Printf.sprintf
           "snapshot has no digest for tenant %s though its history touches it"
           tenant)

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let rec take n = function
  | _ when n <= 0 -> []
  | [] -> []
  | x :: rest -> x :: take (n - 1) rest

let recover ?(io = Real_io.v) ?snapshot ~journal () =
  let* j =
    Result.map_error (Printf.sprintf "%s: %s" journal) (Journal.read_file ~io journal)
  in
  let header = j.Journal.header in
  let* snap =
    match snapshot with
    | Some path when io.Io.file_exists path ->
        let* s = Snapshot.load ~io ~path () in
        Ok (Some s)
    | Some _ | None -> Ok None
  in
  match snap with
  | None ->
      if header.Journal.base <> 0 then
        Error
          (Printf.sprintf
             "%s: journal starts at event %d but no snapshot was found — the \
              snapshotted prefix is missing"
             journal header.Journal.base)
      else
        let* sessions =
          replay ~policy:header.Journal.policy ~seed:header.Journal.seed
            ~capacity:header.Journal.capacity j.Journal.events
        in
        Ok
          {
            sessions;
            policy = header.Journal.policy;
            seed = header.Journal.seed;
            capacity = header.Journal.capacity;
            history = j.Journal.events;
            from_snapshot = 0;
            from_journal = List.length j.Journal.events;
            dropped_torn = j.Journal.dropped_torn;
          }
  | Some s ->
      let* () =
        if s.Snapshot.policy <> header.Journal.policy then
          Error
            (Printf.sprintf "snapshot policy %s does not match journal policy %s"
               s.Snapshot.policy header.Journal.policy)
        else if s.Snapshot.seed <> header.Journal.seed then
          Error
            (Printf.sprintf "snapshot seed %d does not match journal seed %d"
               s.Snapshot.seed header.Journal.seed)
        else if not (Vec.equal s.Snapshot.capacity header.Journal.capacity) then
          Error
            (Printf.sprintf "snapshot capacity %s does not match journal capacity %s"
               (Vec.to_string s.Snapshot.capacity)
               (Vec.to_string header.Journal.capacity))
        else Ok ()
      in
      let snapshot_events = List.length s.Snapshot.history in
      if header.Journal.base > snapshot_events then
        Error
          (Printf.sprintf
             "journal starts at event %d but the snapshot only covers %d events — \
              records are missing"
             header.Journal.base snapshot_events)
      else begin
        (* journal records the snapshot already absorbed (a crash between
           snapshot write and journal truncation leaves them behind) must
           agree with the snapshot's history *)
        let overlap_len = snapshot_events - header.Journal.base in
        let overlap = take overlap_len j.Journal.events in
        let expected = drop header.Journal.base s.Snapshot.history in
        let expected = take (List.length overlap) expected in
        if not (List.equal Journal.equal_event overlap expected) then
          Error
            "journal records overlapping the snapshot differ from the snapshot's \
             history — mismatched files"
        else
          let suffix = drop overlap_len j.Journal.events in
          let* sessions =
            make_sessions ~policy:header.Journal.policy ~seed:header.Journal.seed
              ~capacity:header.Journal.capacity
          in
          let* () =
            replay_into sessions ~policy_name:header.Journal.policy ~first_index:0
              s.Snapshot.history
          in
          let* () = check_digests sessions s in
          let* () =
            replay_into sessions ~policy_name:header.Journal.policy
              ~first_index:snapshot_events suffix
          in
          Ok
            {
              sessions = to_list sessions;
              policy = header.Journal.policy;
              seed = header.Journal.seed;
              capacity = header.Journal.capacity;
              history = s.Snapshot.history @ suffix;
              from_snapshot = snapshot_events;
              from_journal = List.length suffix;
              dropped_torn = j.Journal.dropped_torn;
            }
      end

let session st =
  match List.assoc_opt Tenant.default st.sessions with
  | Some s -> s
  | None -> invalid_arg "Recovery.session: no default tenant session"

let render (st : state) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "recovered: policy=%s seed=%d capacity=%s tenants=%d\n" st.policy
       st.seed
       (Vec.to_string st.capacity)
       (List.length st.sessions));
  Buffer.add_string buf
    (Printf.sprintf "events: %d from snapshot + %d from journal = %d total%s\n"
       st.from_snapshot st.from_journal
       (st.from_snapshot + st.from_journal)
       (if st.dropped_torn then " (dropped a torn final journal record)" else ""));
  List.iter
    (fun (tenant, session) ->
      Buffer.add_string buf
        (Printf.sprintf
           "tenant %s: clock=%g cost=%.4f bins_opened=%d max_open=%d active_items=%d\n"
           tenant (Session.now session)
           (Session.cost_so_far session)
           (Session.bins_opened session)
           (Session.max_open_bins session)
           (Session.active_items session));
      let open_bins = Session.open_bins session in
      Buffer.add_string buf (Printf.sprintf "  open bins (%d):\n" (List.length open_bins));
      List.iter
        (fun (b : Bin.t) ->
          Buffer.add_string buf
            (Printf.sprintf "    bin %d load=%s items=[%s]\n" b.Bin.id
               (Vec.to_string b.Bin.load)
               (String.concat ","
                  (List.map (fun (r : Item.t) -> r.Item.id) b.Bin.active_items
                  |> List.sort Int.compare |> List.map string_of_int))))
        open_bins)
    st.sessions;
  Buffer.contents buf
