module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = {
  base : Uniform_model.params;
  groups : int;
  group_size : int;
  singleton_fraction : float;
}

let default =
  {
    base = { Uniform_model.default with Uniform_model.n = 600 };
    groups = 40;
    group_size = 12;
    singleton_fraction = 0.2;
  }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () ->
      if p.groups <= 0 then Error "Twinned: groups must be positive"
      else if p.group_size <= 0 then Error "Twinned: group_size must be positive"
      else if p.singleton_fraction < 0.0 || p.singleton_fraction > 1.0 then
        Error "Twinned: singleton_fraction must be in [0, 1]"
      else Ok ()

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let size ~hi () =
    Vec.of_array
      (Array.init b.Uniform_model.d (fun _ -> Rng.int_incl rng ~lo:1 ~hi))
  in
  (* replicas of a scale-out group are small relative to a server (that is
     why there are many of them): cap templates at a quarter bin so a
     group's twins actually co-fit and the merge has room to act *)
  let template_hi = Int.max 1 (b.Uniform_model.bin_size / 4) in
  let duration () = float_of_int (Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.mu) in
  let arrival () =
    float_of_int
      (Rng.int_incl rng ~lo:0 ~hi:(b.Uniform_model.span - b.Uniform_model.mu))
  in
  (* scale-out groups: one template VM, replicated group_size times with
     identical arrival, departure and size — exactly what the reduction's
     twin merge collapses *)
  let group_items =
    List.concat
      (List.init p.groups (fun _ ->
           let a = arrival () in
           let d = a +. duration () in
           let s = size ~hi:template_hi () in
           List.init p.group_size (fun _ -> (a, d, s))))
  in
  let singletons =
    let n =
      int_of_float
        (Float.round
           (p.singleton_fraction
           *. float_of_int (p.groups * p.group_size)))
    in
    List.init n (fun _ ->
        let a = arrival () in
        (a, a +. duration (), size ~hi:b.Uniform_model.bin_size ()))
  in
  Instance.of_specs_exn
    ~capacity:(Uniform_model.capacity b)
    (group_items @ singletons)
