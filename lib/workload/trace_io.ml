module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item

let to_string (inst : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dvbp-trace v1\n";
  Buffer.add_string buf "capacity";
  Array.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf ",%d" c))
    (Vec.to_array inst.Instance.capacity);
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Item.t) ->
      Buffer.add_string buf
        (Printf.sprintf "item,%d,%.17g,%.17g" r.Item.id r.Item.arrival r.Item.departure);
      Array.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf ",%d" s))
        (Vec.to_array r.Item.size);
      Buffer.add_char buf '\n')
    inst.Instance.items;
  Buffer.contents buf

(* [field] is the 1-based position within the comma-separated row (the
   row tag — "item"/"capacity" — is field 1), so an error pinpoints both
   the line and the offending field. *)
let parse_int ~line ~field what s =
  match int_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "line %d, field %d: bad %s %S" line field what s)

let parse_float ~line ~field what s =
  match float_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "line %d, field %d: bad %s %S" line field what s)

let ( let* ) = Result.bind

let rec collect_ints ~line ~field what = function
  | [] -> Ok []
  | s :: rest ->
      let* x = parse_int ~line ~field what s in
      let* xs = collect_ints ~line ~field:(field + 1) what rest in
      Ok (x :: xs)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse (lineno, capacity, items) raw =
    let line = lineno + 1 in
    let trimmed = String.trim raw in
    if trimmed = "" || trimmed.[0] = '#' then Ok (line, capacity, items)
    else
      match String.split_on_char ',' trimmed with
      | "capacity" :: fields -> (
          if capacity <> None then Error (Printf.sprintf "line %d: duplicate capacity row" line)
          else
            let* cs = collect_ints ~line ~field:2 "capacity entry" fields in
            match cs with
            | [] -> Error (Printf.sprintf "line %d: empty capacity" line)
            | _ ->
                if List.exists (fun c -> c <= 0) cs then
                  Error (Printf.sprintf "line %d: non-positive capacity" line)
                else Ok (line, Some (Vec.of_list cs), items))
      | "item" :: id :: arrival :: departure :: sizes -> (
          let* id = parse_int ~line ~field:2 "item id" id in
          let* arrival = parse_float ~line ~field:3 "arrival" arrival in
          let* departure = parse_float ~line ~field:4 "departure" departure in
          let* sizes = collect_ints ~line ~field:5 "size entry" sizes in
          match sizes with
          | [] -> Error (Printf.sprintf "line %d: item with no size" line)
          | _ -> (
              let* () =
                match capacity with
                | Some cap when List.length sizes <> Vec.dim cap ->
                    Error
                      (Printf.sprintf
                         "line %d: item has %d size entries but capacity has \
                          %d dimensions"
                         line (List.length sizes) (Vec.dim cap))
                | _ -> Ok ()
              in
              if List.exists (fun s -> s < 0) sizes then
                Error (Printf.sprintf "line %d: negative size" line)
              else
                try
                  let item =
                    Item.make ~id ~arrival ~departure ~size:(Vec.of_list sizes)
                  in
                  Ok (line, capacity, item :: items)
                with Invalid_argument msg ->
                  Error (Printf.sprintf "line %d: %s" line msg)))
      | _ -> Error (Printf.sprintf "line %d: unrecognised row %S" line trimmed)
  in
  let* _, capacity, items =
    List.fold_left
      (fun acc raw -> match acc with Error _ as e -> e | Ok st -> parse st raw)
      (Ok (0, None, []))
      lines
  in
  match capacity with
  | None -> Error "missing capacity row"
  | Some capacity -> Instance.make ~capacity (List.rev items)

let write_file path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string inst))

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
