module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = {
  base : Uniform_model.params;
  base_rate : float;
  amplitude : float;
  period : float;
}

let default =
  {
    base = Uniform_model.default;
    base_rate = 2.0;
    amplitude = 0.7;
    period = 200.0;
  }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () -> (
      match
        Arrival_process.validate
          (Arrival_process.Modulated_poisson
             { base_rate = p.base_rate; amplitude = p.amplitude; period = p.period })
      with
      | Error e -> Error ("Diurnal: " ^ e)
      | Ok () -> Ok ())

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let arrivals =
    Arrival_process.generate
      (Arrival_process.Modulated_poisson
         { base_rate = p.base_rate; amplitude = p.amplitude; period = p.period })
      ~n:b.Uniform_model.n ~rng
  in
  let specs =
    List.map
      (fun arrival ->
        let duration =
          float_of_int (Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.mu)
        in
        let size =
          Vec.of_array
            (Array.init b.Uniform_model.d (fun _ ->
                 Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.bin_size))
        in
        (arrival, arrival +. duration, size))
      arrivals
  in
  Instance.of_specs_exn ~capacity:(Uniform_model.capacity b) specs
