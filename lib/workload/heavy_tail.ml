module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng
module Floatx = Dvbp_prelude.Floatx

type params = {
  base : Uniform_model.params;
  shape : float;
  mean_duration : float;
  max_duration : float;
}

let default =
  {
    base = Uniform_model.default;
    shape = 1.3;
    mean_duration = 8.0;
    max_duration = 400.0;
  }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () ->
      if p.shape <= 1.0 then Error "Heavy_tail: shape must exceed 1"
      else if p.mean_duration <= 0.0 then
        Error "Heavy_tail: mean_duration must be positive"
      else if p.max_duration < 1.0 then
        Error "Heavy_tail: max_duration must be at least 1"
      else if float_of_int p.base.Uniform_model.span <= p.max_duration then
        Error "Heavy_tail: span must exceed max_duration"
      else Ok ()

(* Pareto(shape a, scale s) has mean s·a/(a−1); pick s for the target mean. *)
let scale p = p.mean_duration *. (p.shape -. 1.0) /. p.shape

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let s = scale p in
  let arrival_hi =
    max 0 (b.Uniform_model.span - int_of_float (Float.ceil p.max_duration))
  in
  let specs =
    List.init b.Uniform_model.n (fun _ ->
        let arrival = float_of_int (Rng.int_incl rng ~lo:0 ~hi:arrival_hi) in
        let duration =
          Floatx.clamp ~lo:1.0 ~hi:p.max_duration
            (Rng.pareto rng ~shape:p.shape ~scale:s)
        in
        let size =
          Vec.of_array
            (Array.init b.Uniform_model.d (fun _ ->
                 Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.bin_size))
        in
        (arrival, arrival +. duration, size))
  in
  Instance.of_specs_exn ~capacity:(Uniform_model.capacity b) specs
