(** Heavy-tailed durations: Pareto lifetimes under Table 2 arrivals and
    sizes.

    Measured VM lifetimes are heavy-tailed — most instances die in
    minutes, a few live for weeks. A Pareto(shape) duration clamped to
    [\[1, max_duration\]] reproduces that: the effective [µ] (max/min
    duration ratio) explodes, which is exactly the parameter the paper's
    lower bounds grow with. Long-lived stragglers pin bins open long
    after their cohort departs, so this family punishes policies that
    mix lifetimes in one bin. *)

type params = {
  base : Uniform_model.params;
      (** [d]/[n]/[span]/[bin_size] as in Table 2; [base.mu] is unused
          (the Pareto tail replaces it) *)
  shape : float;  (** Pareto tail index, must exceed 1 (finite mean) *)
  mean_duration : float;
  max_duration : float;  (** truncation point; durations lie in [\[1, max\]] *)
}

val default : params
(** Shape 1.3 (very heavy), mean 8, truncated at 400 over a 1000 span. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
