module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item
module Listx = Dvbp_prelude.Listx

type t = {
  items : int;
  dimensions : int;
  mu : float;
  span : float;
  horizon : float;
  mean_duration : float;
  mean_relative_size : float;
  max_relative_size : float;
  peak_active : int;
  mean_active : float;
  utilisation : float;
}

(* peak concurrent items by an arrival/departure sweep *)
let peak_active (inst : Instance.t) =
  let events =
    List.concat_map
      (fun (r : Item.t) -> [ (r.Item.arrival, 1); (r.Item.departure, -1) ])
      inst.Instance.items
  in
  let events =
    List.sort
      (fun (ta, da) (tb, db) ->
        match Float.compare ta tb with 0 -> Int.compare da db | c -> c)
      events
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, Int.max peak cur))
      (0, 0) events
  in
  peak

let measure (inst : Instance.t) =
  let cap = inst.Instance.capacity in
  let items = inst.Instance.items in
  let n = float_of_int (List.length items) in
  let total_duration = Listx.sum_by Item.duration items in
  let rel_sizes = List.map (fun (r : Item.t) -> Vec.linf ~cap r.Item.size) items in
  let span = Instance.span inst in
  {
    items = List.length items;
    dimensions = Instance.dim inst;
    mu = Instance.mu inst;
    span;
    horizon = Instance.horizon inst;
    mean_duration = total_duration /. n;
    mean_relative_size = Listx.sum_by Fun.id rel_sizes /. n;
    max_relative_size = List.fold_left Float.max 0.0 rel_sizes;
    peak_active = peak_active inst;
    mean_active = (if span > 0.0 then total_duration /. span else 0.0);
    utilisation = Instance.total_utilisation inst;
  }

let render t =
  let row label value = [ label; value ] in
  Dvbp_report.Table.render
    ~header:[ "statistic"; "value" ]
    ~rows:
      [
        row "items" (string_of_int t.items);
        row "dimensions" (string_of_int t.dimensions);
        row "mu (max/min duration)" (Printf.sprintf "%.3f" t.mu);
        row "span" (Printf.sprintf "%.3f" t.span);
        row "horizon" (Printf.sprintf "%.3f" t.horizon);
        row "mean duration" (Printf.sprintf "%.3f" t.mean_duration);
        row "mean relative size" (Printf.sprintf "%.4f" t.mean_relative_size);
        row "max relative size" (Printf.sprintf "%.4f" t.max_relative_size);
        row "peak active items" (string_of_int t.peak_active);
        row "mean active items" (Printf.sprintf "%.2f" t.mean_active);
        row "time-space utilisation" (Printf.sprintf "%.3f" t.utilisation);
      ]

(* The CLI's workload catalogue: every generator selectable by name, with
   the one-liner `dvbp describe`/help print. Workload_select derives its
   dispatch list from this, so adding a family here (and there) keeps the
   two in sync — the describe-completeness test enforces it. *)
let families =
  [
    ("uniform", "Table 2 i.i.d. uniform sizes, durations and arrivals");
    ("gaming", "cloud-gaming sessions: short-lived, Poisson arrivals");
    ("vm", "4-d VM flavours, diurnal arrivals, Pareto lifetimes");
    ("correlated", "Table 2 sizes with cross-dimension correlation rho");
    ("bursty", "quiet baseline plus flat arrival bursts in short windows");
    ("diurnal", "sinusoidal modulated-Poisson arrival rate over Table 2 items");
    ("heavytail", "truncated-Pareto durations: few stragglers pin bins open");
    ("flashcrowd", "spike arrivals with exponential trail-off over a baseline");
    ("azure", "2-d cpu:mem VM catalogue mix, diurnal rate, Pareto lifetimes");
    ("twinned", "scale-out groups of byte-identical items (data-reduction showcase)");
  ]

let render_families () =
  Dvbp_report.Table.render
    ~header:[ "workload"; "description" ]
    ~rows:(List.map (fun (name, blurb) -> [ name; blurb ]) families)
