module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng
module Floatx = Dvbp_prelude.Floatx

let dimension_names = [ "cores"; "memory_gb" ]

type vm_type = { cores : int; memory_gb : int; weight : float }

(* Core counts × memory ratios seen in public cloud VM catalogues:
   most requests are small, memory generally scales 2/4/8 GB per core. *)
let default_catalogue =
  [
    { cores = 1; memory_gb = 2; weight = 0.18 };
    { cores = 1; memory_gb = 4; weight = 0.10 };
    { cores = 2; memory_gb = 4; weight = 0.22 };
    { cores = 2; memory_gb = 8; weight = 0.14 };
    { cores = 4; memory_gb = 8; weight = 0.12 };
    { cores = 4; memory_gb = 16; weight = 0.09 };
    { cores = 4; memory_gb = 32; weight = 0.03 };
    { cores = 8; memory_gb = 16; weight = 0.05 };
    { cores = 8; memory_gb = 32; weight = 0.03 };
    { cores = 8; memory_gb = 64; weight = 0.01 };
    { cores = 16; memory_gb = 64; weight = 0.02 };
    { cores = 24; memory_gb = 64; weight = 0.01 };
  ]

type params = {
  n : int;
  catalogue : vm_type list;
  server_cores : int;
  server_memory_gb : int;
  base_rate : float;
  amplitude : float;
  period : float;
  mean_lifetime : float;
  pareto_shape : float;
  max_lifetime : float;
}

let default =
  {
    n = 800;
    catalogue = default_catalogue;
    server_cores = 48;
    server_memory_gb = 192;
    base_rate = 8.0;
    amplitude = 0.5;
    period = 24.0;
    mean_lifetime = 6.0;
    pareto_shape = 1.4;
    max_lifetime = 168.0;
  }

let validate p =
  if p.n <= 0 then Error "Azure_mix: n must be positive"
  else if p.catalogue = [] then Error "Azure_mix: empty VM catalogue"
  else if p.server_cores <= 0 || p.server_memory_gb <= 0 then
    Error "Azure_mix: server capacities must be positive"
  else if
    List.exists
      (fun v ->
        v.cores <= 0 || v.memory_gb <= 0 || v.weight <= 0.0
        || v.cores > p.server_cores
        || v.memory_gb > p.server_memory_gb)
      p.catalogue
  then Error "Azure_mix: VM type out of server range or bad weight"
  else if p.mean_lifetime <= 0.0 || p.max_lifetime < 1.0 then
    Error "Azure_mix: lifetimes must be positive (max >= 1)"
  else if p.pareto_shape <= 1.0 then Error "Azure_mix: pareto_shape must exceed 1"
  else
    match
      Arrival_process.validate
        (Arrival_process.Modulated_poisson
           { base_rate = p.base_rate; amplitude = p.amplitude; period = p.period })
    with
    | Error e -> Error ("Azure_mix: " ^ e)
    | Ok () -> Ok ()

let pick_type catalogue ~rng =
  let total = List.fold_left (fun acc v -> acc +. v.weight) 0.0 catalogue in
  let x = Rng.float rng total in
  let rec go acc = function
    | [ v ] -> v
    | v :: rest -> if x < acc +. v.weight then v else go (acc +. v.weight) rest
    | [] -> assert false
  in
  go 0.0 catalogue

let pareto_scale p = p.mean_lifetime *. (p.pareto_shape -. 1.0) /. p.pareto_shape

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let capacity = Vec.of_list [ p.server_cores; p.server_memory_gb ] in
  let scale = pareto_scale p in
  let arrivals =
    Arrival_process.generate
      (Arrival_process.Modulated_poisson
         { base_rate = p.base_rate; amplitude = p.amplitude; period = p.period })
      ~n:p.n ~rng
  in
  let specs =
    List.map
      (fun arrival ->
        let v = pick_type p.catalogue ~rng in
        let lifetime =
          Floatx.clamp ~lo:1.0 ~hi:p.max_lifetime
            (Rng.pareto rng ~shape:p.pareto_shape ~scale)
        in
        (arrival, arrival +. lifetime, Vec.of_list [ v.cores; v.memory_gb ]))
      arrivals
  in
  Instance.of_specs_exn ~capacity specs
