(** Diurnal workload: sinusoidally modulated Poisson arrivals over the
    paper's Table 2 size/duration model.

    Cloud request rates follow the day: a [base·(1 + a·sin(2πt/period))]
    intensity (exact, via Lewis–Shedler thinning in {!Arrival_process})
    concentrates arrivals into peaks and drains the troughs. Packings feel
    this as a breathing open-bin count — the regime where the MinUsageTime
    objective separates policies that consolidate during troughs from
    those that strand bins. Sizes and durations stay Table 2 uniform, so
    the {e only} difference from the [uniform] family is arrival timing. *)

type params = {
  base : Uniform_model.params;
      (** sizes/durations/bin size; [base.n] is the item count and
          [base.span] is ignored (the rate fixes the horizon) *)
  base_rate : float;  (** mean arrivals per time unit *)
  amplitude : float;  (** modulation depth, in [\[0, 1)] *)
  period : float;  (** length of one day *)
}

val default : params
(** 1000 items at rate 2 with amplitude 0.7 over a 200-unit day. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
