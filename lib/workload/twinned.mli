(** Scale-out-group workload: clumps of {e identical} VMs.

    Autoscaling groups and batch array jobs launch [k] byte-identical
    instances at one instant that terminate together — the dominant
    redundancy pattern van Bevern et al. exploit for data reduction.
    This generator makes that structure explicit: [groups] templates,
    each replicated [group_size] times with identical arrival, departure
    and size, plus a fraction of unrelated singleton items. The
    reduction's twin merge collapses each group to a handful of
    super-items, so this family is the showcase workload for
    [dvbp run --reduce] and the reduced-vs-raw sweep deltas. *)

type params = {
  base : Uniform_model.params;
      (** sizes/durations/bin size; [base.n] is ignored — the item count
          is [groups * group_size] plus the singletons *)
  groups : int;  (** number of scale-out templates *)
  group_size : int;  (** identical replicas per template *)
  singleton_fraction : float;
      (** singletons added, as a fraction of the grouped items,
          in [\[0, 1\]] *)
}

val default : params
(** 40 groups of 12 replicas (bin size 100, so most groups merge into a
    few super-items), plus 20% singletons. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
