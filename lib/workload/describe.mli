(** Summary statistics of an instance — the numbers that predict how hard a
    workload is to pack (load level, duration spread, demand skew). *)

type t = {
  items : int;
  dimensions : int;
  mu : float;  (** max/min duration ratio *)
  span : float;
  horizon : float;
  mean_duration : float;
  mean_relative_size : float;  (** mean capacity-relative [L∞] item size *)
  max_relative_size : float;
  peak_active : int;  (** peak simultaneously active items *)
  mean_active : float;  (** time-average number of active items over the span *)
  utilisation : float;  (** Lemma 1 (ii) numerator: [Σ ‖s‖∞·ℓ] *)
}

val measure : Dvbp_core.Instance.t -> t

val render : t -> string
(** Aligned key/value table. *)

val families : (string * string) list
(** Every generator family the CLI can select by name, with a one-line
    description — the source of truth for [Workload_select] and the
    [dvbp] help text. *)

val render_families : unit -> string
(** {!families} as an aligned table. *)
