(** Azure-style VM mix: correlated cpu:mem demands on two dimensions.

    Calibrated to the shape of public cloud VM traces (Azure's published
    dataset and instance catalogues): requests come from a discrete
    catalogue of (cores, memory) types whose memory scales 2/4/8 GB per
    core, weighted towards small instances; arrivals follow a diurnal
    modulated-Poisson day; lifetimes are truncated-Pareto heavy-tailed.
    Because demand vectors are {e correlated across dimensions} (memory is
    a small multiple of cores), the effective packing is nearly
    one-dimensional with occasional memory-heavy outliers — the structure
    that separates vector-aware policies from ones that only watch the
    dominant dimension. *)

val dimension_names : string list
(** [\["cores"; "memory_gb"\]]. *)

type vm_type = { cores : int; memory_gb : int; weight : float }

val default_catalogue : vm_type list

type params = {
  n : int;
  catalogue : vm_type list;
  server_cores : int;
  server_memory_gb : int;
  base_rate : float;  (** mean arrivals per hour *)
  amplitude : float;  (** diurnal modulation depth, in [\[0, 1)] *)
  period : float;  (** hours per day *)
  mean_lifetime : float;  (** hours *)
  pareto_shape : float;
  max_lifetime : float;  (** truncation, hours *)
}

val default : params
(** 800 VMs on 48-core / 192 GB servers, rate 8/h with 0.5 amplitude
    over a 24 h day, mean lifetime 6 h truncated at one week. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
