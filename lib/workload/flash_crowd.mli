(** Flash crowds: sudden arrival spikes with an exponential trail-off.

    A launch, a broadcast, a failover — demand jumps from baseline to a
    sharp peak within a short ramp, then decays exponentially as the
    crowd loses interest. This differs from {!Bursty} (a flat clump in a
    fixed window) in the {e asymmetry}: the onset is near-vertical while
    the tail stretches several mean durations, so bins opened at the peak
    drain gradually and reward policies that re-fill them (Best Fit,
    Move To Front) over those that keep opening (Next Fit). Sizes and
    durations follow the Table 2 uniform model. *)

type params = {
  base : Uniform_model.params;
      (** sizes/durations/bin size; [base.n] is the {e baseline} count *)
  crowds : int;  (** number of flash-crowd episodes *)
  crowd_size : int;  (** items per episode *)
  ramp : float;  (** near-vertical onset width (time units) *)
  decay : float;  (** exponential trail-off scale *)
}

val default : params
(** 500 baseline items plus 4 crowds of 150, ramp 1, decay 15. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
