module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = {
  base : Uniform_model.params;
  crowds : int;
  crowd_size : int;
  ramp : float;
  decay : float;
}

let default =
  {
    base = { Uniform_model.default with Uniform_model.n = 500 };
    crowds = 4;
    crowd_size = 150;
    ramp = 1.0;
    decay = 15.0;
  }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () ->
      if p.crowds < 0 then Error "Flash_crowd: negative crowd count"
      else if p.crowd_size <= 0 then Error "Flash_crowd: crowd_size must be positive"
      else if p.ramp <= 0.0 then Error "Flash_crowd: ramp must be positive"
      else if p.decay <= 0.0 then Error "Flash_crowd: decay must be positive"
      else if
        p.ramp +. p.decay >= float_of_int p.base.Uniform_model.span
      then Error "Flash_crowd: ramp + decay exceeds the span"
      else Ok ()

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let size () =
    Vec.of_array
      (Array.init b.Uniform_model.d (fun _ ->
           Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.bin_size))
  in
  let duration () = float_of_int (Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.mu) in
  let window = float_of_int (b.Uniform_model.span - b.Uniform_model.mu) in
  let baseline =
    List.init b.Uniform_model.n (fun _ ->
        let arrival = float_of_int (Rng.int_incl rng ~lo:0 ~hi:(b.Uniform_model.span - b.Uniform_model.mu)) in
        (arrival, arrival +. duration (), size ()))
  in
  (* Each crowd: arrivals ramp up uniformly over [onset, onset+ramp), then
     trail off with exponential(decay) offsets — the news-spike shape, as
     opposed to Bursty's flat window. *)
  let crowd_items =
    List.concat
      (List.init p.crowds (fun _ ->
           let onset =
             Rng.float rng (Float.max 1e-9 (window -. p.ramp -. p.decay))
           in
           List.init p.crowd_size (fun _ ->
               let offset =
                 if Rng.float rng 1.0 < 0.5 then Rng.float rng p.ramp
                 else p.ramp +. Rng.exponential rng ~mean:(p.decay /. 4.0)
               in
               let arrival = Float.min (onset +. offset) (onset +. p.ramp +. p.decay) in
               (arrival, arrival +. duration (), size ()))))
  in
  Instance.of_specs_exn
    ~capacity:(Uniform_model.capacity b)
    (baseline @ crowd_items)
