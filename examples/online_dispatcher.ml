(* A live dispatcher built on the incremental Session API: requests are
   generated on the fly (the future is genuinely unknown to the policy),
   departures pop from a schedule the dispatcher cannot see, and the
   running cost / observable-lower-bound ratio is printed as the day
   unfolds — the operator's view of MinUsageTime DVBP.

   Run with: dune exec examples/online_dispatcher.exe *)

module Rng = Dvbp_prelude.Rng
module Vec = Dvbp_vec.Vec
module Core = Dvbp_core
module Session = Dvbp_engine.Session

(* pending departures in a min-heap keyed by time *)
module Schedule = struct
  module Heap = Dvbp_prelude.Heap

  let create () = Heap.create ~cmp:(fun (a, _) (b, _) -> Float.compare a b) ()
  let add t time item = Heap.add t (time, item)

  let rec pop_due t ~now =
    match Heap.peek_min t with
    | Some (time, _) when time <= now -> (
        match Heap.pop_min t with
        | Some due -> due :: pop_due t ~now
        | None -> [])
    | Some _ | None -> []
end

let () =
  let rng = Rng.create ~seed:77 in
  let capacity = Vec.of_list [ 100; 100 ] in
  let session = Session.create ~capacity ~policy:(Core.Policy.move_to_front ()) () in
  let departures = Schedule.create () in
  let clock = ref 0.0 in
  let horizon = 480.0 (* an 8-hour shift, in minutes *) in
  let report_every = 60.0 in
  let next_report = ref report_every in
  Printf.printf "%8s %10s %10s %8s %8s\n" "time" "cost" "bins-open" "active" "placed";
  let placed = ref 0 in
  while !clock < horizon do
    clock := !clock +. Rng.exponential rng ~mean:0.7;
    (* serve departures that became due, oldest first *)
    List.iter
      (fun (time, item_id) -> Session.depart session ~at:time ~item_id)
      (Schedule.pop_due departures ~now:!clock);
    (* a new request with an unknown (to the policy) service time *)
    let size =
      Vec.of_list
        [ Rng.int_incl rng ~lo:5 ~hi:60; Rng.int_incl rng ~lo:5 ~hi:60 ]
    in
    let placement = Session.arrive session ~at:!clock ~size () in
    incr placed;
    let service = 1.0 +. Rng.exponential rng ~mean:25.0 in
    Schedule.add departures (!clock +. service) placement.Session.item_id;
    if !clock >= !next_report then begin
      next_report := !next_report +. report_every;
      Printf.printf "%8.1f %10.1f %10d %8d %8d\n" !clock
        (Session.cost_so_far session)
        (List.length (Session.open_bins session))
        (Session.active_items session)
        !placed
    end
  done;
  (* drain: serve every remaining departure in order *)
  let rec drain () =
    match Schedule.pop_due departures ~now:infinity with
    | [] -> ()
    | due ->
        List.iter (fun (time, item_id) -> Session.depart session ~at:time ~item_id) due;
        drain ()
  in
  drain ();
  let final = Session.cost_so_far session in
  Printf.printf "\nshift over: %d requests, %d servers rented, %.1f server-minutes\n"
    !placed (Session.bins_opened session) final;
  let packing = Session.finish session ~at:(Session.now session) in
  Printf.printf "final packing has %d bins and validated cost %.1f\n"
    (Core.Packing.num_bins packing)
    (Core.Packing.cost packing)
