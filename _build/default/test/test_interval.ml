(* Unit + property tests for half-open intervals and canonical interval
   sets (the machinery behind span(R) and the proof decompositions). *)

open Dvbp_interval

let i = Interval.make
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let interval_tests =
  [
    Alcotest.test_case "length" `Quick (fun () ->
        check_float "len" 2.5 (Interval.length (i 1.0 3.5)));
    Alcotest.test_case "empty interval" `Quick (fun () ->
        check_bool "empty" true (Interval.is_empty (i 2.0 2.0));
        check_bool "nonempty" false (Interval.is_empty (i 2.0 2.1)));
    Alcotest.test_case "mem half-open" `Quick (fun () ->
        check_bool "lo included" true (Interval.mem 1.0 (i 1.0 2.0));
        check_bool "hi excluded" false (Interval.mem 2.0 (i 1.0 2.0));
        check_bool "inside" true (Interval.mem 1.5 (i 1.0 2.0)));
    Alcotest.test_case "rejects lo > hi" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (i 2.0 1.0); false with Invalid_argument _ -> true));
    Alcotest.test_case "rejects non-finite" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (i 0.0 infinity); false with Invalid_argument _ -> true));
    Alcotest.test_case "overlaps half-open touching" `Quick (fun () ->
        (* [0,1) and [1,2) share no point *)
        check_bool "touching do not overlap" false (Interval.overlaps (i 0.0 1.0) (i 1.0 2.0));
        check_bool "proper overlap" true (Interval.overlaps (i 0.0 1.5) (i 1.0 2.0)));
    Alcotest.test_case "intersect" `Quick (fun () ->
        (match Interval.intersect (i 0.0 2.0) (i 1.0 3.0) with
        | Some x -> check_bool "eq" true (Interval.equal x (i 1.0 2.0))
        | None -> Alcotest.fail "expected overlap");
        check_bool "disjoint" true (Interval.intersect (i 0.0 1.0) (i 2.0 3.0) = None));
    Alcotest.test_case "hull spans gaps" `Quick (fun () ->
        check_bool "hull" true
          (Interval.equal (Interval.hull (i 0.0 1.0) (i 3.0 4.0)) (i 0.0 4.0)));
    Alcotest.test_case "abuts_or_overlaps" `Quick (fun () ->
        check_bool "abutting" true (Interval.abuts_or_overlaps (i 0.0 1.0) (i 1.0 2.0));
        check_bool "gap" false (Interval.abuts_or_overlaps (i 0.0 1.0) (i 1.5 2.0)));
  ]

let set_of lst = Interval_set.of_intervals lst

let set_tests =
  [
    Alcotest.test_case "merges overlapping" `Quick (fun () ->
        let s = set_of [ i 0.0 2.0; i 1.0 3.0 ] in
        Alcotest.(check int) "one piece" 1 (List.length (Interval_set.intervals s));
        check_float "span" 3.0 (Interval_set.total_length s));
    Alcotest.test_case "merges adjacent" `Quick (fun () ->
        let s = set_of [ i 0.0 1.0; i 1.0 2.0 ] in
        Alcotest.(check int) "one piece" 1 (List.length (Interval_set.intervals s)));
    Alcotest.test_case "keeps gaps" `Quick (fun () ->
        let s = set_of [ i 0.0 1.0; i 2.0 3.0 ] in
        Alcotest.(check int) "two pieces" 2 (List.length (Interval_set.intervals s));
        check_float "total" 2.0 (Interval_set.total_length s));
    Alcotest.test_case "drops empties" `Quick (fun () ->
        check_bool "empty set" true (Interval_set.is_empty (set_of [ i 1.0 1.0 ])));
    Alcotest.test_case "unsorted input canonicalised" `Quick (fun () ->
        let s = set_of [ i 5.0 6.0; i 0.0 1.0; i 0.5 2.0 ] in
        check_float "total" 3.0 (Interval_set.total_length s));
    Alcotest.test_case "hull" `Quick (fun () ->
        match Interval_set.hull (set_of [ i 1.0 2.0; i 4.0 5.0 ]) with
        | Some h -> check_bool "hull" true (Interval.equal h (i 1.0 5.0))
        | None -> Alcotest.fail "expected hull");
    Alcotest.test_case "mem" `Quick (fun () ->
        let s = set_of [ i 0.0 1.0; i 2.0 3.0 ] in
        check_bool "in first" true (Interval_set.mem 0.5 s);
        check_bool "in gap" false (Interval_set.mem 1.5 s);
        check_bool "hi excluded" false (Interval_set.mem 3.0 s));
    Alcotest.test_case "union" `Quick (fun () ->
        let a = set_of [ i 0.0 1.0 ] and b = set_of [ i 0.5 2.0 ] in
        check_float "len" 2.0 (Interval_set.total_length (Interval_set.union a b)));
    Alcotest.test_case "inter" `Quick (fun () ->
        let a = set_of [ i 0.0 2.0; i 3.0 5.0 ] and b = set_of [ i 1.0 4.0 ] in
        check_float "len" 2.0 (Interval_set.total_length (Interval_set.inter a b)));
    Alcotest.test_case "diff punches holes" `Quick (fun () ->
        let a = set_of [ i 0.0 10.0 ] and b = set_of [ i 2.0 3.0; i 5.0 6.0 ] in
        let d = Interval_set.diff a b in
        check_float "len" 8.0 (Interval_set.total_length d);
        Alcotest.(check int) "pieces" 3 (List.length (Interval_set.intervals d)));
    Alcotest.test_case "diff with itself is empty" `Quick (fun () ->
        let a = set_of [ i 0.0 1.0; i 2.0 4.0 ] in
        check_bool "empty" true (Interval_set.is_empty (Interval_set.diff a a)));
    Alcotest.test_case "covers" `Quick (fun () ->
        let s = set_of [ i 0.0 2.0; i 3.0 5.0 ] in
        check_bool "inside piece" true (Interval_set.covers s (i 0.5 1.5));
        check_bool "across gap" false (Interval_set.covers s (i 1.0 4.0));
        check_bool "empty always covered" true (Interval_set.covers s (i 9.0 9.0)));
  ]

(* Random interval lists: canonicalisation must preserve total measure and
   pointwise membership, and inter/diff must satisfy |A| = |A∩B| + |A\B|. *)
let intervals_gen =
  QCheck2.Gen.(
    list_size (1 -- 12)
      (map
         (fun (a, len) -> (float_of_int a /. 4.0, float_of_int (a + len) /. 4.0))
         (pair (0 -- 40) (0 -- 12))))

let to_set pairs = Interval_set.of_intervals (List.map (fun (a, b) -> i a b) pairs)

let prop_measure_split =
  QCheck2.Test.make ~name:"|A| = |A∩B| + |A\\B|" ~count:300
    QCheck2.Gen.(pair intervals_gen intervals_gen)
    (fun (pa, pb) ->
      let a = to_set pa and b = to_set pb in
      let total = Interval_set.total_length a in
      let inter = Interval_set.total_length (Interval_set.inter a b) in
      let diff = Interval_set.total_length (Interval_set.diff a b) in
      Float.abs (total -. (inter +. diff)) < 1e-6)

let prop_union_monotone =
  QCheck2.Test.make ~name:"max |A| |B| <= |A∪B| <= |A|+|B|" ~count:300
    QCheck2.Gen.(pair intervals_gen intervals_gen)
    (fun (pa, pb) ->
      let a = to_set pa and b = to_set pb in
      let u = Interval_set.total_length (Interval_set.union a b) in
      u +. 1e-9 >= Float.max (Interval_set.total_length a) (Interval_set.total_length b)
      && u <= Interval_set.total_length a +. Interval_set.total_length b +. 1e-9)

let prop_canonical_disjoint_sorted =
  QCheck2.Test.make ~name:"canonical form sorted, disjoint, gapped" ~count:300
    intervals_gen
    (fun pairs ->
      let s = to_set pairs in
      let rec ok = function
        | (a : Interval.t) :: (b : Interval.t) :: rest ->
            a.Interval.hi < b.Interval.lo && ok (b :: rest)
        | _ -> true
      in
      ok (Interval_set.intervals s))

let prop_inclusion_exclusion =
  QCheck2.Test.make ~name:"|A∪B| = |A| + |B| − |A∩B|" ~count:300
    QCheck2.Gen.(pair intervals_gen intervals_gen)
    (fun (pa, pb) ->
      let a = to_set pa and b = to_set pb in
      let u = Interval_set.total_length (Interval_set.union a b) in
      let i = Interval_set.total_length (Interval_set.inter a b) in
      Float.abs
        (u -. (Interval_set.total_length a +. Interval_set.total_length b -. i))
      < 1e-6)

let prop_covers_iff_diff_empty =
  QCheck2.Test.make ~name:"covers piece <=> piece \\ set is empty" ~count:300
    QCheck2.Gen.(
      let* pieces = intervals_gen in
      let* a = 0 -- 40 in
      let* len = 0 -- 12 in
      return (pieces, (float_of_int a /. 4.0, float_of_int (a + len) /. 4.0)))
    (fun (pieces, (lo, hi)) ->
      let s = to_set pieces in
      let piece = i lo hi in
      Interval_set.covers s piece
      = Interval_set.is_empty
          (Interval_set.diff (Interval_set.of_intervals [ piece ]) s))

let prop_inter_commutative =
  QCheck2.Test.make ~name:"inter is commutative" ~count:300
    QCheck2.Gen.(pair intervals_gen intervals_gen)
    (fun (pa, pb) ->
      let a = to_set pa and b = to_set pb in
      Interval_set.equal (Interval_set.inter a b) (Interval_set.inter b a))

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_measure_split; prop_union_monotone; prop_canonical_disjoint_sorted;
      prop_inclusion_exclusion; prop_covers_iff_diff_empty; prop_inter_commutative;
    ]

let suites =
  [
    ("interval.basics", interval_tests);
    ("interval.sets", set_tests);
    ("interval.properties", property_tests);
  ]
