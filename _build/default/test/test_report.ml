(* Tests for text tables, CSV emission and ASCII plots. *)

open Dvbp_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let table_tests =
  [
    Alcotest.test_case "columns aligned to widest cell" `Quick (fun () ->
        let out =
          Table.render ~header:[ "a"; "bb" ]
            ~rows:[ [ "wide-cell"; "x" ]; [ "y"; "z" ] ]
        in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | header :: rule :: _ ->
            check_int "equal width" (String.length header) (String.length rule)
        | _ -> Alcotest.fail "too few lines");
        check_bool "has rule" true (contains_sub out "---------"));
    Alcotest.test_case "ragged rows rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Table.render ~header:[ "a" ] ~rows:[ [ "x"; "y" ] ]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "csv plain" `Quick (fun () ->
        Alcotest.(check string)
          "simple" "a,b\n1,2\n"
          (Table.to_csv ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ]));
    Alcotest.test_case "csv quoting" `Quick (fun () ->
        let out = Table.to_csv ~header:[ "x" ] ~rows:[ [ "a,b" ]; [ "say \"hi\"" ] ] in
        check_bool "comma quoted" true (contains_sub out "\"a,b\"");
        check_bool "quote doubled" true (contains_sub out "\"say \"\"hi\"\"\""));
    Alcotest.test_case "empty rows fine" `Quick (fun () ->
        let out = Table.render ~header:[ "only" ] ~rows:[] in
        check_bool "has header" true (contains_sub out "only"));
  ]

let plot_tests =
  [
    Alcotest.test_case "plots markers and legend" `Quick (fun () ->
        let s =
          {
            Ascii_plot.label = "mtf";
            marker = 'M';
            points = [ (0.0, 1.0); (1.0, 2.0); (2.0, 1.5) ];
          }
        in
        let out = Ascii_plot.render ~width:20 ~height:8 [ s ] in
        check_bool "marker plotted" true (String.contains out 'M');
        check_bool "legend" true (contains_sub out "M mtf"));
    Alcotest.test_case "collision shown as +" `Quick (fun () ->
        let a = { Ascii_plot.label = "a"; marker = 'A'; points = [ (0.0, 0.0); (1.0, 1.0) ] } in
        let b = { Ascii_plot.label = "b"; marker = 'B'; points = [ (0.0, 0.0); (1.0, 0.0) ] } in
        let out = Ascii_plot.render ~width:10 ~height:5 [ a; b ] in
        check_bool "collision" true (String.contains out '+'));
    Alcotest.test_case "duplicate markers rejected" `Quick (fun () ->
        let a = { Ascii_plot.label = "a"; marker = 'A'; points = [ (0.0, 0.0) ] } in
        let b = { Ascii_plot.label = "b"; marker = 'A'; points = [ (1.0, 1.0) ] } in
        check_bool "raises" true
          (try ignore (Ascii_plot.render [ a; b ]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "no series rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Ascii_plot.render []); false with Invalid_argument _ -> true));
    Alcotest.test_case "series with no points still legended" `Quick (fun () ->
        let a = { Ascii_plot.label = "empty"; marker = 'E'; points = [] } in
        let out = Ascii_plot.render [ a ] in
        check_bool "mentioned" true (contains_sub out "E empty"));
    Alcotest.test_case "constant series does not divide by zero" `Quick (fun () ->
        let a = { Ascii_plot.label = "c"; marker = 'C'; points = [ (1.0, 2.0); (1.0, 2.0) ] } in
        let out = Ascii_plot.render [ a ] in
        check_bool "rendered" true (String.contains out 'C'));
  ]

let histogram_tests =
  [
    Alcotest.test_case "counts land in the right bins" `Quick (fun () ->
        let out = Histogram.render ~bins:2 ~width:10 [ 0.0; 0.1; 0.9; 1.0 ] in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
        check_int "two bins" 2 (List.length lines);
        check_bool "counts shown" true (contains_sub out "    2 |"));
    Alcotest.test_case "constant data does not crash" `Quick (fun () ->
        let out = Histogram.render [ 5.0; 5.0; 5.0 ] in
        check_bool "bar" true (String.contains out '#'));
    Alcotest.test_case "empty rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Histogram.render []); false with Invalid_argument _ -> true));
    Alcotest.test_case "bad bins rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Histogram.render ~bins:0 [ 1.0 ]); false
           with Invalid_argument _ -> true));
  ]

let suites =
  [
    ("report.table", table_tests);
    ("report.ascii_plot", plot_tests);
    ("report.histogram", histogram_tests);
  ]
