(* Tests for Dvbp_lowerbound: load profiles, Lemma 1 bounds, the exact
   vector-bin-packing solver, exact OPT (eq. 2) and the offline
   no-repacking optimum — including the ordering
   span/util <= height-integral <= OPT <= offline <= any online cost. *)

open Dvbp_core
open Dvbp_lowerbound
module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Engine = Dvbp_engine.Engine
module Rng = Dvbp_prelude.Rng

let v = Vec.of_list
let cap = v [ 100 ]
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let inst ?(capacity = cap) specs = Instance.of_specs_exn ~capacity specs

let profile_tests =
  [
    Alcotest.test_case "segments of overlapping items" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 30 ]); (1.0, 3.0, v [ 50 ]) ] in
        match Load_profile.load_segments i with
        | [ s1; s2; s3 ] ->
            check_bool "s1" true (Interval.equal s1.Load_profile.interval (Interval.make 0.0 1.0));
            check_bool "l1" true (Vec.equal s1.Load_profile.load (v [ 30 ]));
            check_bool "s2" true (Interval.equal s2.Load_profile.interval (Interval.make 1.0 2.0));
            check_bool "l2" true (Vec.equal s2.Load_profile.load (v [ 80 ]));
            check_bool "s3" true (Interval.equal s3.Load_profile.interval (Interval.make 2.0 3.0));
            check_bool "l3" true (Vec.equal s3.Load_profile.load (v [ 50 ]))
        | segs -> Alcotest.failf "expected 3 segments, got %d" (List.length segs));
    Alcotest.test_case "gap produces no segment" `Quick (fun () ->
        let i = inst [ (0.0, 1.0, v [ 30 ]); (2.0, 3.0, v [ 50 ]) ] in
        check_int "segments" 2 (List.length (Load_profile.load_segments i)));
    Alcotest.test_case "touching items share a boundary, no gap segment" `Quick
      (fun () ->
        let i = inst [ (0.0, 1.0, v [ 30 ]); (1.0, 2.0, v [ 50 ]) ] in
        match Load_profile.load_segments i with
        | [ s1; s2 ] ->
            check_bool "l1" true (Vec.equal s1.Load_profile.load (v [ 30 ]));
            check_bool "l2" true (Vec.equal s2.Load_profile.load (v [ 50 ]))
        | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs));
    Alcotest.test_case "active_segments lists the right items" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 30 ]); (1.0, 3.0, v [ 50 ]) ] in
        let ids seg =
          List.map (fun (r : Item.t) -> r.Item.id) seg.Load_profile.active
        in
        match Load_profile.active_segments i with
        | [ a; b; c ] ->
            Alcotest.(check (list int)) "a" [ 0 ] (ids a);
            Alcotest.(check (list int)) "b" [ 0; 1 ] (ids b);
            Alcotest.(check (list int)) "c" [ 1 ] (ids c)
        | segs -> Alcotest.failf "expected 3 segments, got %d" (List.length segs));
    Alcotest.test_case "max_active" `Quick (fun () ->
        let i =
          inst [ (0.0, 4.0, v [ 1 ]); (1.0, 2.0, v [ 1 ]); (1.0, 3.0, v [ 1 ]) ]
        in
        check_int "peak" 3 (Load_profile.max_active i));
    Alcotest.test_case "segment lengths sum to span" `Quick (fun () ->
        let i =
          inst [ (0.0, 2.0, v [ 10 ]); (5.0, 7.0, v [ 10 ]); (6.0, 9.0, v [ 10 ]) ]
        in
        let total =
          Dvbp_prelude.Listx.sum_by
            (fun (s : Load_profile.segment) -> Interval.length s.Load_profile.interval)
            (Load_profile.load_segments i)
        in
        check_float "span" (Instance.span i) total);
  ]

let bounds_tests =
  [
    Alcotest.test_case "span bound" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 10 ]); (5.0, 6.0, v [ 10 ]) ] in
        check_float "span" 3.0 (Bounds.span i));
    Alcotest.test_case "utilisation bound (d=1)" `Quick (fun () ->
        (* 0.5 * 2 + 0.25 * 4 = 2.0 *)
        let i = inst [ (0.0, 2.0, v [ 50 ]); (0.0, 4.0, v [ 25 ]) ] in
        check_float "util" 2.0 (Bounds.utilisation i));
    Alcotest.test_case "utilisation divides by d" `Quick (fun () ->
        let c2 = v [ 100; 100 ] in
        let i = inst ~capacity:c2 [ (0.0, 2.0, v [ 50; 10 ]) ] in
        check_float "util" 0.5 (Bounds.utilisation i));
    Alcotest.test_case "height integral counts forced bins" `Quick (fun () ->
        (* two 60s overlap on [1,2): 2 bins there, 1 bin elsewhere *)
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        check_float "height" 4.0 (Bounds.height_integral i));
    Alcotest.test_case "height integral in 2d uses worst dimension" `Quick (fun () ->
        let c2 = v [ 100; 100 ] in
        let i =
          inst ~capacity:c2 [ (0.0, 1.0, v [ 10; 60 ]); (0.0, 1.0, v [ 10; 60 ]) ]
        in
        check_float "height" 2.0 (Bounds.height_integral i));
    Alcotest.test_case "best dominates" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        check_float "best" 4.0 (Bounds.best i));
  ]

let solver_tests =
  [
    Alcotest.test_case "empty list needs no bin" `Quick (fun () ->
        check_int "zero" 0 (Vbp_solver.min_bins_exn ~cap []));
    Alcotest.test_case "pairs that exactly fill" `Quick (fun () ->
        check_int "two bins" 2
          (Vbp_solver.min_bins_exn ~cap [ v [ 60 ]; v [ 60 ]; v [ 40 ]; v [ 40 ] ]));
    Alcotest.test_case "beats FFD on the classic counterexample" `Quick (fun () ->
        let items =
          List.map (fun x -> v [ x ])
            [ 45; 45; 45; 45; 35; 35; 35; 35; 20; 20; 20; 20 ]
        in
        check_int "ffd" 5 (Vbp_solver.ffd_bins ~cap items);
        check_int "opt" 4 (Vbp_solver.min_bins_exn ~cap items));
    Alcotest.test_case "2d conflict forces extra bin" `Quick (fun () ->
        let c2 = v [ 100; 100 ] in
        (* 1D-projections all fit pairwise, but dim 2 conflicts *)
        let items = [ v [ 10; 60 ]; v [ 10; 60 ]; v [ 10; 60 ] ] in
        check_int "three bins in dim2" 2
          (Vbp_solver.min_bins_exn ~cap:c2 [ List.hd items; List.nth items 1 ])
        |> ignore;
        check_int "pair" 1
          (Vbp_solver.min_bins_exn ~cap:c2 [ v [ 10; 60 ]; v [ 10; 40 ] ]));
    Alcotest.test_case "lower_bound is the height bound" `Quick (fun () ->
        check_int "lb" 2 (Vbp_solver.lower_bound ~cap [ v [ 60 ]; v [ 60 ] ]);
        check_int "lb empty" 0 (Vbp_solver.lower_bound ~cap []));
    Alcotest.test_case "oversized item rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Vbp_solver.min_bins ~cap [ v [ 101 ] ]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "node limit reported" `Quick (fun () ->
        (* FFD is suboptimal here, so the search must actually run *)
        let items =
          List.map (fun x -> v [ x ])
            [ 45; 45; 45; 45; 35; 35; 35; 35; 20; 20; 20; 20 ]
        in
        match Vbp_solver.min_bins ~node_limit:3 ~cap items with
        | Error (`Node_limit 3) -> ()
        | Ok _ -> Alcotest.fail "expected node-limit failure"
        | Error (`Node_limit n) -> Alcotest.failf "wrong limit %d" n);
  ]

let dff_tests =
  [
    Alcotest.test_case "sees what the height bound cannot" `Quick (fun () ->
        (* three items of 0.6: any two overflow, so 3 bins; height says 2 *)
        let sizes = [ v [ 6 ]; v [ 6 ]; v [ 6 ] ] in
        let cap10 = v [ 10 ] in
        check_int "height" 2 (Vbp_solver.lower_bound ~cap:cap10 sizes);
        check_int "dff" 3 (Dff.slice_bound ~cap:cap10 sizes);
        check_int "exact agrees" 3 (Vbp_solver.min_bins_exn ~cap:cap10 sizes));
    Alcotest.test_case "empty slice needs nothing" `Quick (fun () ->
        check_int "zero" 0 (Dff.slice_bound ~cap:(v [ 10 ]) []));
    Alcotest.test_case "multi-dimensional: worst dimension wins" `Quick (fun () ->
        let c2 = v [ 10; 10 ] in
        let sizes = [ v [ 1; 6 ]; v [ 1; 6 ]; v [ 1; 6 ] ] in
        check_int "dff" 3 (Dff.slice_bound ~cap:c2 sizes));
    Alcotest.test_case "integral dominates the height integral" `Quick (fun () ->
        let i =
          inst [ (0.0, 2.0, v [ 60 ]); (0.0, 2.0, v [ 60 ]); (0.0, 2.0, v [ 60 ]) ]
        in
        check_float "height" 4.0 (Bounds.height_integral i);
        check_float "dff" 6.0 (Dff.integral i);
        check_float "exact" 6.0 (Opt.exact_exn i));
  ]

(* random slices: height <= dff <= exact optimum *)
let prop_dff_sandwich =
  QCheck2.Test.make ~name:"height <= dff <= exact min bins" ~count:300
    QCheck2.Gen.(
      let* d = 1 -- 3 in
      let* n = 0 -- 8 in
      list_repeat n (array_repeat d (1 -- 10)) >|= fun arrays -> (d, arrays))
    (fun (d, arrays) ->
      let cap = Vec.make ~dim:d 10 in
      let sizes = List.map Vec.of_array arrays in
      let height = Vbp_solver.lower_bound ~cap sizes in
      let dff = Dff.slice_bound ~cap sizes in
      let exact = Vbp_solver.min_bins_exn ~cap sizes in
      height <= dff && dff <= exact)

(* the DFF itself must be dual feasible: any single-bin-feasible set maps to
   u-total at most one bin, for every threshold *)
let prop_dff_valid =
  QCheck2.Test.make ~name:"u_lambda is dual feasible" ~count:500
    QCheck2.Gen.(
      let* n = 1 -- 6 in
      let* xs = list_repeat n (1 -- 10) in
      let* l = 1 -- 5 in
      return (xs, l))
    (fun (xs, l) ->
      let cap = 10 in
      (* only single-bin-feasible sets are constrained *)
      if List.fold_left ( + ) 0 xs > cap then true
      else
        let u x = if x > cap - l then cap else if x >= l then x else 0 in
        List.fold_left (fun acc x -> acc + u x) 0 xs <= cap)

let opt_tests =
  [
    Alcotest.test_case "non-overlapping items: OPT = total duration" `Quick
      (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (3.0, 5.0, v [ 60 ]) ] in
        check_float "opt" 4.0 (Opt.exact_exn i));
    Alcotest.test_case "conflicting overlap doubles the bill" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (0.0, 2.0, v [ 60 ]) ] in
        check_float "opt" 4.0 (Opt.exact_exn i));
    Alcotest.test_case "compatible overlap shares" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 40 ]); (0.0, 2.0, v [ 60 ]) ] in
        check_float "opt" 2.0 (Opt.exact_exn i));
    Alcotest.test_case "Thm 8 instance (n=1): OPT = mu + 1" `Quick (fun () ->
        let mu = 10.0 in
        let i =
          inst
            [
              (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
              (0.0, 1.0, v [ 50 ]); (0.0, mu, v [ 25 ]);
            ]
        in
        check_float "opt" (mu +. 1.0) (Opt.exact_exn i));
    Alcotest.test_case "profile steps" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]) ] in
        match Opt.profile i with
        | Ok [ (_, 1); (_, 2); (_, 1) ] -> ()
        | Ok steps -> Alcotest.failf "unexpected profile of %d steps" (List.length steps)
        | Error _ -> Alcotest.fail "node limit");
  ]

let offline_tests =
  [
    Alcotest.test_case "single bin instance" `Quick (fun () ->
        let i = inst [ (0.0, 2.0, v [ 40 ]); (1.0, 3.0, v [ 60 ]) ] in
        check_float "cost" 3.0 (Offline.min_cost_exn i));
    Alcotest.test_case "no repacking can cost more than OPT" `Quick (fun () ->
        (* Two long items that cannot share with the middle spike packed
           beside them; the repacking OPT is the height integral, offline
           assignment must commit. Construction: A [0,4) 60; B [1,3) 60;
           C [2,6) 60. OPT: slices 1+2+2+1+1... just assert ordering. *)
        let i =
          inst [ (0.0, 4.0, v [ 60 ]); (1.0, 3.0, v [ 60 ]); (2.0, 6.0, v [ 60 ]) ]
        in
        let opt = Opt.exact_exn i and off = Offline.min_cost_exn i in
        check_bool "opt <= offline" true (opt <= off +. 1e-9));
    Alcotest.test_case "offline beats first fit when FF is greedy-blind" `Quick
      (fun () ->
        (* FF packs the long thin item with the first short fat one, keeping
           its bin open for ages; offline isolates it. items: A [0,1) 50,
           B [0,10) 50, C [1,2) 60 arrives after A left... craft:
           A [0,1) 50; B [0,10) 50 -> FF: same bin (cost 10) then
           C [1,2) 60 -> fits that bin after A departs? load 50+60 no ->
           new bin cost 1. FF total 11. Offline: A+C alone? they don't
           overlap... A [0,1) and C [1,2) in one bin (cost 2), B alone (10)
           -> 12? worse. Keep simple: assert offline <= FF. *)
        let specs = [ (0.0, 1.0, v [ 50 ]); (0.0, 10.0, v [ 50 ]); (1.0, 2.0, v [ 60 ]) ] in
        let i = inst specs in
        let ff = Engine.run ~policy:(Policy.first_fit ()) i in
        check_bool "offline <= ff" true
          (Offline.min_cost_exn i <= Engine.cost ff +. 1e-9));
    Alcotest.test_case "node limit reported" `Quick (fun () ->
        let specs = List.init 10 (fun k -> (float_of_int k, float_of_int (k + 3), v [ 30 ])) in
        match Offline.min_cost ~node_limit:5 (inst specs) with
        | Error (`Node_limit 5) -> ()
        | _ -> Alcotest.fail "expected node-limit failure");
  ]

(* Random small instances: the full chain of inequalities. *)
let small_instance_gen =
  QCheck2.Gen.(
    let* d = 1 -- 2 in
    let* n = 1 -- 6 in
    let* specs =
      list_repeat n
        (let* a = 0 -- 5 in
         let* dur = 1 -- 4 in
         let* size = array_repeat d (1 -- 10) in
         return (float_of_int a, float_of_int (a + dur), size))
    in
    return (d, specs))

let build (d, specs) =
  let capacity = Vec.make ~dim:d 10 in
  Instance.of_specs_exn ~capacity
    (List.map (fun (a, e, s) -> (a, e, Vec.of_array s)) specs)

let prop_bound_chain =
  QCheck2.Test.make ~name:"span,util <= height <= OPT <= offline" ~count:150
    small_instance_gen (fun input ->
      let i = build input in
      let height = Bounds.height_integral i in
      let opt = Opt.exact_exn i in
      let off = Offline.min_cost_exn ~node_limit:5_000_000 i in
      Bounds.span i <= height +. 1e-9
      && Bounds.utilisation i <= height +. 1e-9
      && height <= opt +. 1e-9
      && opt <= off +. 1e-9)

let prop_online_above_offline =
  QCheck2.Test.make ~name:"every policy costs >= offline optimum" ~count:100
    small_instance_gen (fun input ->
      let i = build input in
      let off = Offline.min_cost_exn ~node_limit:5_000_000 i in
      List.for_all
        (fun name ->
          let rng = Rng.create ~seed:11 in
          let policy = Policy.of_name_exn ~rng name in
          Engine.cost (Engine.run ~policy i) >= off -. 1e-9)
        Policy.standard_names)

let prop_solver_matches_bounds =
  QCheck2.Test.make ~name:"lower_bound <= min_bins <= ffd_bins" ~count:200
    QCheck2.Gen.(
      let* d = 1 -- 3 in
      let* n = 0 -- 8 in
      list_repeat n (array_repeat d (1 -- 10)) >|= fun arrays -> (d, arrays))
    (fun (d, arrays) ->
      let cap = Vec.make ~dim:d 10 in
      let items = List.map Vec.of_array arrays in
      let lb = Vbp_solver.lower_bound ~cap items in
      let opt = Vbp_solver.min_bins_exn ~cap items in
      let ffd = Vbp_solver.ffd_bins ~cap items in
      lb <= opt && opt <= ffd)

let prop_dff_integral_sandwich =
  QCheck2.Test.make ~name:"height integral <= dff integral <= OPT" ~count:100
    small_instance_gen (fun input ->
      let i = build input in
      let height = Bounds.height_integral i in
      let dff = Dff.integral i in
      let opt = Opt.exact_exn i in
      height <= dff +. 1e-9 && dff <= opt +. 1e-9)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bound_chain; prop_online_above_offline; prop_solver_matches_bounds;
      prop_dff_sandwich; prop_dff_valid; prop_dff_integral_sandwich;
    ]

let suites =
  [
    ("lowerbound.profile", profile_tests);
    ("lowerbound.bounds", bounds_tests);
    ("lowerbound.dff", dff_tests);
    ("lowerbound.solver", solver_tests);
    ("lowerbound.opt", opt_tests);
    ("lowerbound.offline", offline_tests);
    ("lowerbound.properties", property_tests);
  ]
