test/test_core.ml: Alcotest Bin Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec Instance Item List Load_measure Packing Policy Result String
