test/test_printers.ml: Alcotest Bin Dvbp_adversary Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_interval Dvbp_stats Dvbp_vec Format Instance Item List Packing Policy String
