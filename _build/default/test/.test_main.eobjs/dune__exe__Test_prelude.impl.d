test/test_prelude.ml: Alcotest Dvbp_prelude Float Floatx Fun Heap Int Intmath List Listx QCheck2 QCheck_alcotest Rng
