test/test_props.ml: Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_vec Dvbp_workload Engine Float Instance Item List Packing Policy QCheck2 QCheck_alcotest Result Session Trace
