test/test_experiments.ml: Ablations Alcotest Array Dvbp_experiments Dvbp_prelude Dvbp_workload Figure4 List Proof_figures Result Runner Significance String Table1 Table2 Worst_case_search
