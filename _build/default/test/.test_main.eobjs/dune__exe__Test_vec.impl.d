test/test_vec.ml: Alcotest Array Dvbp_vec Float List QCheck2 QCheck_alcotest Vec
