test/test_stats.ml: Alcotest Array Compare Dvbp_stats Float List Normal QCheck2 QCheck_alcotest Running Summary
