test/test_report.ml: Alcotest Ascii_plot Dvbp_report Histogram List String Table
