test/test_session.ml: Alcotest Dvbp_core Dvbp_engine Dvbp_prelude Dvbp_vec Dvbp_workload Engine Instance Item List Packing Policy Session String
