test/test_adversary.ml: Alcotest Anyfit_lb Bestfit_lb Dvbp_adversary Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Gadget List Mtf_lb Nextfit_lb Option Policy Printf QCheck2 QCheck_alcotest
