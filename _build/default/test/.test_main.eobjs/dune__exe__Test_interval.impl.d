test/test_interval.ml: Alcotest Dvbp_interval Float Interval Interval_set List QCheck2 QCheck_alcotest
