test/test_cli.ml: Alcotest Dvbp_cli_lib Dvbp_core Dvbp_workload Filename Fun In_channel List Out_channel Result Run_report String Sys Workload_select
