(* Smoke tests for every pretty-printer: each must produce non-empty,
   crash-free output on representative values (printers feed the CLI and
   failure messages, so a raising printer would mask real errors). *)

open Dvbp_core
module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Engine = Dvbp_engine.Engine
module Trace = Dvbp_engine.Trace

let check_nonempty what s =
  Alcotest.(check bool) (what ^ " non-empty") true (String.length s > 0)

let sample_run () =
  let instance =
    Instance.of_specs_exn
      ~capacity:(Vec.of_list [ 10; 10 ])
      [ (0.0, 2.0, Vec.of_list [ 6; 2 ]); (1.0, 3.0, Vec.of_list [ 6; 2 ]) ]
  in
  (instance, Engine.run ~policy:(Policy.first_fit ()) instance)

let printer_tests =
  [
    Alcotest.test_case "vec / interval / interval_set" `Quick (fun () ->
        check_nonempty "vec" (Vec.to_string (Vec.of_list [ 1; 2 ]));
        check_nonempty "interval" (Interval.to_string (Interval.make 0.0 1.5));
        check_nonempty "interval set"
          (Format.asprintf "%a" Interval_set.pp
             (Interval_set.of_intervals [ Interval.make 0.0 1.0 ])));
    Alcotest.test_case "item / instance / bin" `Quick (fun () ->
        let instance, _ = sample_run () in
        check_nonempty "item"
          (Format.asprintf "%a" Item.pp (List.hd instance.Instance.items));
        check_nonempty "instance" (Format.asprintf "%a" Instance.pp instance);
        let b = Bin.create ~id:0 ~capacity:(Vec.of_list [ 10 ]) ~now:0.0 ~touch:0 in
        check_nonempty "open bin" (Format.asprintf "%a" Bin.pp b);
        Bin.close b ~now:1.0;
        check_nonempty "closed bin" (Format.asprintf "%a" Bin.pp b));
    Alcotest.test_case "packing / trace" `Quick (fun () ->
        let _, run = sample_run () in
        check_nonempty "packing" (Format.asprintf "%a" Packing.pp run.Engine.packing);
        check_nonempty "trace" (Format.asprintf "%a" Trace.pp run.Engine.trace));
    Alcotest.test_case "stats / diagnostics / gadget / verdict" `Quick (fun () ->
        let s = Dvbp_stats.Summary.of_samples [ 1.0; 2.0; 3.0 ] in
        check_nonempty "summary" (Format.asprintf "%a" Dvbp_stats.Summary.pp s);
        let instance, run = sample_run () in
        check_nonempty "diagnostics"
          (Format.asprintf "%a" Dvbp_analysis.Diagnostics.pp
             (Dvbp_analysis.Diagnostics.measure run.Engine.packing));
        let g = Dvbp_adversary.Mtf_lb.construct ~n:1 ~mu:2.0 in
        check_nonempty "gadget" (Format.asprintf "%a" Dvbp_adversary.Gadget.pp g);
        match
          Dvbp_analysis.Bound_check.check ~policy:"ff" ~cost:2.0 ~opt:1.0 ~instance
        with
        | Some verdict ->
            check_nonempty "verdict"
              (Format.asprintf "%a" Dvbp_analysis.Bound_check.pp_verdict verdict)
        | None -> Alcotest.fail "expected a verdict");
  ]

let suites = [ ("printers.smoke", printer_tests) ]
