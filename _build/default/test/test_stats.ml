(* Unit + property tests for Dvbp_stats: Welford accumulation, merging and
   quantiles. Figure 4's mean ± std columns come from these. *)

open Dvbp_stats

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let running_tests =
  [
    Alcotest.test_case "mean and variance of known data" `Quick (fun () ->
        let acc = Running.create () in
        List.iter (Running.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        check_float "mean" 5.0 (Running.mean acc);
        (* population variance is 4; unbiased sample variance = 32/7 *)
        check_float "variance" (32.0 /. 7.0) (Running.variance acc);
        check_float "stddev" (sqrt (32.0 /. 7.0)) (Running.stddev acc));
    Alcotest.test_case "single sample" `Quick (fun () ->
        let acc = Running.create () in
        Running.add acc 3.0;
        check_float "mean" 3.0 (Running.mean acc);
        check_float "variance" 0.0 (Running.variance acc));
    Alcotest.test_case "empty accumulator raises" `Quick (fun () ->
        let acc = Running.create () in
        check_bool "raises" true
          (try ignore (Running.mean acc); false with Failure _ -> true));
    Alcotest.test_case "min / max tracked" `Quick (fun () ->
        let acc = Running.create () in
        List.iter (Running.add acc) [ 3.0; -1.0; 7.0 ];
        check_float "min" (-1.0) (Running.min_value acc);
        check_float "max" 7.0 (Running.max_value acc));
    Alcotest.test_case "merge equals bulk" `Quick (fun () ->
        let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
        let a = Running.create () and b = Running.create () and all = Running.create () in
        List.iter (Running.add a) xs;
        List.iter (Running.add b) ys;
        List.iter (Running.add all) (xs @ ys);
        let m = Running.merge a b in
        Alcotest.(check int) "count" (Running.count all) (Running.count m);
        check_float "mean" (Running.mean all) (Running.mean m);
        check_float "variance" (Running.variance all) (Running.variance m));
    Alcotest.test_case "merge with empty" `Quick (fun () ->
        let a = Running.create () and b = Running.create () in
        List.iter (Running.add a) [ 1.0; 2.0 ];
        let m = Running.merge a b in
        check_float "mean" 1.5 (Running.mean m);
        let m' = Running.merge b a in
        check_float "mean'" 1.5 (Running.mean m'));
  ]

let summary_tests =
  [
    Alcotest.test_case "quantiles of 1..5" `Quick (fun () ->
        let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
        check_float "median" 3.0 (Summary.quantile sorted 0.5);
        check_float "min" 1.0 (Summary.quantile sorted 0.0);
        check_float "max" 5.0 (Summary.quantile sorted 1.0);
        check_float "q25" 2.0 (Summary.quantile sorted 0.25));
    Alcotest.test_case "quantile interpolates" `Quick (fun () ->
        check_float "between" 1.5 (Summary.quantile [| 1.0; 2.0 |] 0.5));
    Alcotest.test_case "quantile rejects bad q" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Summary.quantile [| 1.0 |] 1.5); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "of_samples consistency" `Quick (fun () ->
        let s = Summary.of_samples [ 5.0; 1.0; 3.0 ] in
        Alcotest.(check int) "count" 3 s.Summary.count;
        check_float "mean" 3.0 s.Summary.mean;
        check_float "median" 3.0 s.Summary.median;
        check_float "min" 1.0 s.Summary.min;
        check_float "max" 5.0 s.Summary.max);
    Alcotest.test_case "of_samples rejects empty" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Summary.of_samples []); false with Invalid_argument _ -> true));
  ]

let normal_tests =
  [
    Alcotest.test_case "cdf at known points" `Quick (fun () ->
        Alcotest.(check (float 1e-6)) "0" 0.5 (Normal.cdf 0.0);
        Alcotest.(check (float 1e-4)) "1.96" 0.975 (Normal.cdf 1.96);
        Alcotest.(check (float 1e-4)) "-1.96" 0.025 (Normal.cdf (-1.96));
        check_bool "monotone" true (Normal.cdf 1.0 > Normal.cdf 0.5));
    Alcotest.test_case "two-sided p" `Quick (fun () ->
        Alcotest.(check (float 1e-3)) "z=1.96" 0.05 (Normal.two_sided_p 1.96);
        Alcotest.(check (float 1e-6)) "z=0" 1.0 (Normal.two_sided_p 0.0));
    Alcotest.test_case "pdf symmetric and peaked at 0" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "sym" (Normal.pdf 1.2) (Normal.pdf (-1.2));
        check_bool "peak" true (Normal.pdf 0.0 > Normal.pdf 0.5));
  ]

let compare_tests =
  [
    Alcotest.test_case "rank_sum on a hand-computed example" `Quick (fun () ->
        (* a = {1,2,3}, b = {4,5,6}: R1 = 6, U = 0 *)
        let r = Compare.rank_sum [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |] in
        Alcotest.(check (float 1e-9)) "U" 0.0 r.Compare.u;
        check_bool "negative shift" true (r.Compare.median_shift < 0.0);
        check_bool "small p" true (r.Compare.p_two_sided < 0.1));
    Alcotest.test_case "identical samples are a tie" `Quick (fun () ->
        let a = [| 1.0; 2.0; 3.0; 4.0 |] in
        let r = Compare.rank_sum a a in
        Alcotest.(check (float 1e-9)) "z" 0.0 r.Compare.z;
        Alcotest.(check (float 1e-6)) "p" 1.0 r.Compare.p_two_sided;
        check_bool "no winner" false (Compare.significantly_less a a));
    Alcotest.test_case "clearly separated samples are significant" `Quick (fun () ->
        let a = Array.init 30 (fun i -> float_of_int i) in
        let b = Array.init 30 (fun i -> 100.0 +. float_of_int i) in
        check_bool "a < b" true (Compare.significantly_less a b);
        check_bool "not b < a" false (Compare.significantly_less b a));
    Alcotest.test_case "ties handled via midranks" `Quick (fun () ->
        let r = Compare.rank_sum [| 1.0; 1.0; 1.0 |] [| 1.0; 1.0; 1.0 |] in
        Alcotest.(check (float 1e-9)) "z" 0.0 r.Compare.z);
    Alcotest.test_case "empty sample rejected" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Compare.rank_sum [||] [| 1.0 |]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "confidence interval brackets the mean" `Quick (fun () ->
        let samples = Array.init 100 (fun i -> float_of_int (i mod 10)) in
        let lo, hi = Compare.mean_confidence_interval samples in
        check_bool "lo < mean" true (lo < 4.5);
        check_bool "mean < hi" true (4.5 < hi);
        let lo99, hi99 = Compare.mean_confidence_interval ~confidence:0.99 samples in
        check_bool "wider at 99%" true (hi99 -. lo99 > hi -. lo));
    Alcotest.test_case "confidence interval needs two samples" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Compare.mean_confidence_interval [| 1.0 |]); false
           with Invalid_argument _ -> true));
  ]

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"Welford matches two-pass mean/variance" ~count:300
    QCheck2.Gen.(list_size (2 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let acc = Running.create () in
      List.iter (Running.add acc) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      Float.abs (Running.mean acc -. mean) < 1e-6
      && Float.abs (Running.variance acc -. var) < 1e-5)

let prop_merge_associative_enough =
  QCheck2.Test.make ~name:"merge consistent under arbitrary split" ~count:300
    QCheck2.Gen.(
      pair (list_size (1 -- 30) (float_bound_inclusive 100.0))
        (list_size (1 -- 30) (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let a = Running.create () and b = Running.create () and all = Running.create () in
      List.iter (Running.add a) xs;
      List.iter (Running.add b) ys;
      List.iter (Running.add all) (xs @ ys);
      let m = Running.merge a b in
      Float.abs (Running.mean m -. Running.mean all) < 1e-6
      && Float.abs (Running.variance m -. Running.variance all) < 1e-5)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_welford_matches_naive; prop_merge_associative_enough ]

let suites =
  [
    ("stats.running", running_tests);
    ("stats.summary", summary_tests);
    ("stats.normal", normal_tests);
    ("stats.compare", compare_tests);
    ("stats.properties", property_tests);
  ]
