(* Tests for the CLI support library: workload selection/dispatch and the
   run-and-report path. *)

open Dvbp_cli_lib
module Instance = Dvbp_core.Instance

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let source ?(workload = "uniform") ?trace ?(d = 2) ?(mu = 5) ?(n = 50)
    ?(rho = 0.5) ?(seed = 1) () =
  { Workload_select.workload; trace; d; mu; n; rho; seed }

let select_tests =
  [
    Alcotest.test_case "every known workload builds" `Quick (fun () ->
        List.iter
          (fun workload ->
            match Workload_select.build (source ~workload ()) with
            | Ok inst -> check_bool workload true (Instance.size inst > 0)
            | Error e -> Alcotest.failf "%s: %s" workload e)
          Workload_select.known_workloads);
    Alcotest.test_case "uniform respects n and d" `Quick (fun () ->
        match Workload_select.build (source ~n:77 ~d:3 ()) with
        | Ok inst ->
            check_int "n" 77 (Instance.size inst);
            check_int "d" 3 (Instance.dim inst)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "unknown workload is a clean error" `Quick (fun () ->
        match Workload_select.build (source ~workload:"nonsense" ()) with
        | Error msg -> check_bool "mentions known list" true
            (String.length msg > 0)
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "generator validation surfaces as Error" `Quick (fun () ->
        check_bool "n=0" true
          (Result.is_error (Workload_select.build (source ~n:0 ())));
        check_bool "mu>span" true
          (Result.is_error (Workload_select.build (source ~mu:100_000 ()))));
    Alcotest.test_case "trace overrides workload" `Quick (fun () ->
        let path = Filename.temp_file "dvbp_cli" ".csv" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc "capacity,10\nitem,0,0.0,1.0,5\n");
            match Workload_select.build (source ~workload:"nonsense" ~trace:path ()) with
            | Ok inst -> check_int "one item" 1 (Instance.size inst)
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "missing trace file is a clean error" `Quick (fun () ->
        check_bool "error" true
          (Result.is_error
             (Workload_select.build (source ~trace:"/nonexistent.csv" ()))));
    Alcotest.test_case "deterministic per seed" `Quick (fun () ->
        let get () =
          match Workload_select.build (source ~seed:9 ()) with
          | Ok i -> Dvbp_workload.Trace_io.to_string i
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check string) "same" (get ()) (get ()));
  ]

let report_tests =
  [
    Alcotest.test_case "run_one succeeds for every policy name" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:20 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        List.iter
          (fun policy ->
            match Run_report.run_one ~policy ~seed:1 inst ~gantt:false with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" policy e)
          ("daf" :: "hff" :: Dvbp_core.Policy.standard_names));
    Alcotest.test_case "run_one exports assignments on request" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:10 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        let path = Filename.temp_file "dvbp_assign" ".csv" in
        Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
            (match Run_report.run_one ~export:path ~policy:"ff" ~seed:1 inst ~gantt:false with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let lines =
              In_channel.with_open_text path In_channel.input_all
              |> String.split_on_char '\n'
              |> List.filter (fun l -> l <> "")
            in
            (* header + one row per item *)
            check_int "rows" (1 + Instance.size inst) (List.length lines)));
    Alcotest.test_case "run_one with trajectory plot succeeds" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:15 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        match Run_report.run_one ~trajectory:true ~policy:"mtf" ~seed:1 inst ~gantt:false with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "run_one rejects unknown policies" `Quick (fun () ->
        let inst =
          match Workload_select.build (source ~n:5 ()) with
          | Ok i -> i
          | Error e -> Alcotest.fail e
        in
        check_bool "error" true
          (Result.is_error (Run_report.run_one ~policy:"zzz" ~seed:1 inst ~gantt:false)));
  ]

let suites =
  [ ("cli.workload_select", select_tests); ("cli.run_report", report_tests) ]
