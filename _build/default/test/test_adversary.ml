(* Tests for the §6 lower-bound constructions: each gadget's analytic cost
   bound must be certified by an actual engine run, its OPT upper bound by
   the exact solver, and the certified ratio must approach the theorem's
   limit as the growth parameter increases. *)

open Dvbp_core
open Dvbp_adversary
module Engine = Dvbp_engine.Engine
module Opt = Dvbp_lowerbound.Opt
module Rng = Dvbp_prelude.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let run_policy name instance =
  let rng = Rng.create ~seed:21 in
  Engine.run ~policy:(Policy.of_name_exn ~rng name) instance

let anyfit_tests =
  [
    Alcotest.test_case "every strict Any Fit policy pays at least the analytic bound"
      `Quick (fun () ->
        (* Next Fit is excluded: its open-bin list holds only the current
           bin, so the proof's "the probes must reuse the dk open bins"
           step does not apply to it (it has its own Thm 6 bound). *)
        List.iter
          (fun (d, k) ->
            let g = Anyfit_lb.construct ~d ~k ~mu:5.0 in
            List.iter
              (fun name ->
                let r = run_policy name g.Gadget.instance in
                check_bool
                  (Printf.sprintf "%s on d=%d k=%d" name d k)
                  true
                  (Engine.cost r >= g.Gadget.alg_cost_lower -. 1e-9))
              [ "ff"; "bf"; "wf"; "lf"; "mtf"; "rf" ])
          [ (1, 1); (1, 3); (2, 2); (3, 2) ]);
    Alcotest.test_case "strict Any Fit policies open exactly dk bins on R0 and reuse them"
      `Quick (fun () ->
        let d = 2 and k = 3 in
        let g = Anyfit_lb.construct ~d ~k ~mu:4.0 in
        List.iter
          (fun name ->
            let r = run_policy name g.Gadget.instance in
            check_int (name ^ " bins") (d * k) r.Dvbp_engine.Engine.bins_opened)
          [ "ff"; "bf"; "wf"; "lf"; "mtf"; "rf" ]);
    Alcotest.test_case "exact OPT within the analytic upper bound" `Quick (fun () ->
        let g = Anyfit_lb.construct ~d:2 ~k:2 ~mu:3.0 in
        check_bool "opt <= upper" true
          (Opt.exact_exn g.Gadget.instance <= g.Gadget.opt_upper +. 1e-9));
    Alcotest.test_case "certified ratio grows with k toward the limit" `Quick
      (fun () ->
        let mu = 5.0 and d = 2 in
        let r2 = Gadget.cr_lower (Anyfit_lb.construct ~d ~k:2 ~mu) in
        let r20 = Gadget.cr_lower (Anyfit_lb.construct ~d ~k:20 ~mu) in
        let limit = (mu +. 1.0) *. float_of_int d in
        check_bool "monotone" true (r20 > r2);
        check_bool "below limit" true (r20 <= limit);
        check_bool "close at k=20" true (r20 >= 0.7 *. limit));
    Alcotest.test_case "rejects bad parameters" `Quick (fun () ->
        check_bool "d" true
          (try ignore (Anyfit_lb.construct ~d:0 ~k:1 ~mu:2.0); false
           with Invalid_argument _ -> true);
        check_bool "mu" true
          (try ignore (Anyfit_lb.construct ~d:1 ~k:1 ~mu:0.5); false
           with Invalid_argument _ -> true));
  ]

let nextfit_tests =
  [
    Alcotest.test_case "next fit opens 1+(k-1)d bins and pays the bound" `Quick
      (fun () ->
        List.iter
          (fun (d, k) ->
            let g = Nextfit_lb.construct ~d ~k ~mu:6.0 in
            let r = run_policy "nf" g.Gadget.instance in
            check_int
              (Printf.sprintf "bins d=%d k=%d" d k)
              (1 + ((k - 1) * d))
              r.Dvbp_engine.Engine.bins_opened;
            check_bool "cost" true (Engine.cost r >= g.Gadget.alg_cost_lower -. 1e-9))
          [ (1, 2); (1, 4); (2, 2); (3, 2) ]);
    Alcotest.test_case "exact OPT within the analytic upper bound" `Quick (fun () ->
        let g = Nextfit_lb.construct ~d:1 ~k:4 ~mu:4.0 in
        check_bool "opt" true (Opt.exact_exn g.Gadget.instance <= g.Gadget.opt_upper +. 1e-9));
    Alcotest.test_case "first fit does much better on the same instance" `Quick
      (fun () ->
        let g = Nextfit_lb.construct ~d:2 ~k:4 ~mu:10.0 in
        let nf = run_policy "nf" g.Gadget.instance in
        let ff = run_policy "ff" g.Gadget.instance in
        check_bool "ff cheaper" true (Engine.cost ff < Engine.cost nf));
    Alcotest.test_case "certified ratio approaches 2*mu*d" `Quick (fun () ->
        let mu = 4.0 and d = 2 in
        let r2 = Gadget.cr_lower (Nextfit_lb.construct ~d ~k:2 ~mu) in
        let r20 = Gadget.cr_lower (Nextfit_lb.construct ~d ~k:20 ~mu) in
        let limit = 2.0 *. mu *. float_of_int d in
        check_bool "monotone" true (r20 > r2);
        check_bool "below limit" true (r20 <= limit);
        check_bool "close at k=20" true (r20 >= 0.6 *. limit));
    Alcotest.test_case "rejects odd k" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Nextfit_lb.construct ~d:1 ~k:3 ~mu:2.0); false
           with Invalid_argument _ -> true));
  ]

let mtf_tests =
  [
    Alcotest.test_case "move to front opens 2n bins and pays exactly 2n*mu" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let g = Mtf_lb.construct ~n ~mu:7.0 in
            let r = run_policy "mtf" g.Gadget.instance in
            check_int (Printf.sprintf "bins n=%d" n) (2 * n)
              r.Dvbp_engine.Engine.bins_opened;
            check_float "cost" g.Gadget.alg_cost_lower (Engine.cost r))
          [ 1; 2; 5 ]);
    Alcotest.test_case "exact OPT matches mu + n here" `Quick (fun () ->
        let g = Mtf_lb.construct ~n:2 ~mu:6.0 in
        check_float "opt" g.Gadget.opt_upper (Opt.exact_exn g.Gadget.instance));
    Alcotest.test_case "certified ratio approaches 2*mu" `Quick (fun () ->
        let mu = 9.0 in
        let r1 = Gadget.cr_lower (Mtf_lb.construct ~n:1 ~mu) in
        let r30 = Gadget.cr_lower (Mtf_lb.construct ~n:30 ~mu) in
        check_bool "monotone" true (r30 > r1);
        check_bool "below limit" true (r30 <= 2.0 *. mu);
        check_bool "close at n=30" true (r30 >= 0.7 *. 2.0 *. mu));
    Alcotest.test_case "first fit is near-optimal on the same instance" `Quick
      (fun () ->
        (* FF consolidates crumbs: its cost stays within a small multiple of
           OPT while MTF pays ~2 mu / (1 + mu/n) times OPT. *)
        let g = Mtf_lb.construct ~n:10 ~mu:20.0 in
        let ff = run_policy "ff" g.Gadget.instance in
        let mtf = run_policy "mtf" g.Gadget.instance in
        check_bool "ff much cheaper" true
          (Engine.cost ff *. 2.0 < Engine.cost mtf));
  ]

let bestfit_tests =
  [
    Alcotest.test_case "best fit strands one bin per phase" `Quick (fun () ->
        let k = 5 and t_end = 50.0 in
        let g = Bestfit_lb.construct ~k ~t_end in
        let r = run_policy "bf" g.Gadget.instance in
        check_bool "cost above bound" true
          (Engine.cost r >= g.Gadget.alg_cost_lower -. 1e-9));
    Alcotest.test_case "measured ratio grows with k (unbounded CR family)" `Quick
      (fun () ->
        let ratio k =
          let t_end = float_of_int (k * k * k) in
          let g = Bestfit_lb.construct ~k ~t_end in
          let r = run_policy "bf" g.Gadget.instance in
          Engine.cost r /. g.Gadget.opt_upper
        in
        let r2 = ratio 2 and r6 = ratio 6 in
        check_bool "grows" true (r6 > (1.5 *. r2)));
    Alcotest.test_case "exact OPT within the analytic upper bound" `Quick (fun () ->
        let g = Bestfit_lb.construct ~k:3 ~t_end:30.0 in
        check_bool "opt" true (Opt.exact_exn g.Gadget.instance <= g.Gadget.opt_upper +. 1e-9));
    Alcotest.test_case "rejects too-early t_end" `Quick (fun () ->
        check_bool "raises" true
          (try ignore (Bestfit_lb.construct ~k:5 ~t_end:5.0); false
           with Invalid_argument _ -> true));
  ]

(* structural properties of the gadget instances themselves *)
let gadget_gen =
  QCheck2.Gen.(
    let* d = 1 -- 3 in
    let* k = 1 -- 6 in
    let* mu = 1 -- 12 in
    let* family = oneofl [ `Anyfit; `Nextfit; `Mtf; `Bestfit ] in
    return (d, k, mu, family))

let build_gadget (d, k, mu, family) =
  let mu = float_of_int mu in
  match family with
  | `Anyfit -> Anyfit_lb.construct ~d ~k ~mu
  | `Nextfit -> Nextfit_lb.construct ~d ~k:(2 * k) ~mu
  | `Mtf -> Mtf_lb.construct ~n:k ~mu
  | `Bestfit -> Bestfit_lb.construct ~k ~t_end:((2.0 *. float_of_int k) +. 10.0)

let prop_gadget_instances_well_formed =
  QCheck2.Test.make ~name:"gadget instances are valid and certified below the limit"
    ~count:150 gadget_gen (fun input ->
      let g = build_gadget input in
      (* Instance construction already validates; check the analytics *)
      Gadget.cr_lower g <= g.Gadget.cr_limit +. 1e-9
      && g.Gadget.opt_upper > 0.0
      && g.Gadget.alg_cost_lower > 0.0)

let prop_gadget_opt_upper_sound =
  QCheck2.Test.make ~name:"gadget OPT upper bounds dominate the height bound"
    ~count:150 gadget_gen (fun input ->
      let g = build_gadget input in
      (* opt_upper must be an upper bound on OPT, hence at least any lower
         bound on OPT *)
      Dvbp_lowerbound.Bounds.height_integral g.Gadget.instance
      <= g.Gadget.opt_upper +. 1e-9)

let prop_target_policy_pays =
  QCheck2.Test.make ~name:"the targeted policy pays at least the certified cost"
    ~count:100 gadget_gen (fun input ->
      let g = build_gadget input in
      let policy = Option.value ~default:"ff" g.Gadget.target in
      let run = run_policy policy g.Gadget.instance in
      Engine.cost run >= g.Gadget.alg_cost_lower -. 1e-9)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_gadget_instances_well_formed; prop_gadget_opt_upper_sound;
      prop_target_policy_pays;
    ]

let suites =
  [
    ("adversary.properties", property_tests);
    ("adversary.anyfit_lb", anyfit_tests);
    ("adversary.nextfit_lb", nextfit_tests);
    ("adversary.mtf_lb", mtf_tests);
    ("adversary.bestfit_lb", bestfit_tests);
  ]
