(* Quickstart: pack a handful of jobs online with Move To Front, inspect
   the resulting packing and compare against the exact optimum.

   Run with: dune exec examples/quickstart.exe *)

module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Policy = Dvbp_core.Policy
module Packing = Dvbp_core.Packing
module Engine = Dvbp_engine.Engine

let () =
  (* A server has 100% CPU and 100% memory; five jobs arrive online. *)
  let capacity = Vec.of_list [ 100; 100 ] in
  let instance =
    Instance.of_specs_exn ~capacity
      [
        (0.0, 4.0, Vec.of_list [ 60; 20 ]);   (* long, CPU-heavy *)
        (0.0, 2.0, Vec.of_list [ 30; 70 ]);   (* short, memory-heavy *)
        (1.0, 5.0, Vec.of_list [ 50; 30 ]);
        (2.0, 3.0, Vec.of_list [ 20; 20 ]);
        (4.0, 6.0, Vec.of_list [ 80; 60 ]);
      ]
  in
  let run = Engine.run ~policy:(Policy.move_to_front ()) instance in
  Printf.printf "Move To Front used %d servers for a total of %.1f server-hours\n\n"
    run.Engine.bins_opened (Engine.cost run);
  print_string (Dvbp_analysis.Gantt.render ~width:60 run.Engine.packing);
  let opt = Dvbp_lowerbound.Opt.exact_exn instance in
  Printf.printf "\nexact optimum (with repacking): %.1f server-hours\n" opt;
  Printf.printf "competitive ratio on this input: %.3f\n" (Engine.cost run /. opt);
  match Packing.validate instance run.Engine.packing with
  | Ok () -> print_endline "packing validated: no server ever over capacity"
  | Error es -> List.iter print_endline es
