(* Runs the §6 lower-bound constructions through the simulator and prints
   measured vs certified vs limiting competitive ratios for growing
   instance families.

   Run with: dune exec examples/adversarial_analysis.exe *)

let () =
  print_endline "Table 1 (theory):";
  print_string (Dvbp_experiments.Table1.render_theory ());
  print_newline ();
  print_endline "Lower-bound gadgets, executed (d=2, mu=5, k in {2,4,8}):";
  let rows = Dvbp_experiments.Table1.verify_gadgets ~d:2 ~mu:5.0 ~ks:[ 2; 4; 8 ] () in
  print_string (Dvbp_experiments.Table1.render_verification rows);
  print_newline ();
  print_endline "Upper-bound fuzz against exact OPT (small random instances):";
  let fuzz = Dvbp_experiments.Table1.fuzz_upper_bounds ~instances:100 ~seed:5 () in
  print_string (Dvbp_experiments.Table1.render_fuzz fuzz)
