(* Cloud gaming scenario (paper §1): game sessions with GPU / bandwidth /
   memory demands are dispatched to rented servers; the dispatch policy
   decides the monthly rental bill. Compares all seven Any Fit policies on
   the same session trace and reports cost, cost over the Lemma 1 lower
   bound, peak fleet size, and packing diagnostics.

   Run with: dune exec examples/cloud_gaming.exe *)

module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Bounds = Dvbp_lowerbound.Bounds
module Workload = Dvbp_workload
module An = Dvbp_analysis

let () =
  let params = { Workload.Cloud_gaming.default with Workload.Cloud_gaming.n = 800 } in
  let instance = Workload.Cloud_gaming.generate params ~rng:(Rng.create ~seed:2024) in
  let lb = Bounds.height_integral instance in
  Printf.printf
    "cloud gaming: %d sessions over %.0f minutes, dimensions = %s\n\
     lower bound on any dispatcher's bill: %.0f server-minutes\n\n"
    (Core.Instance.size instance)
    (Core.Instance.horizon instance)
    (String.concat "/" Workload.Cloud_gaming.dimension_names)
    lb;
  let rows =
    List.map
      (fun name ->
        let policy = Core.Policy.of_name_exn ~rng:(Rng.create ~seed:7) name in
        let run = Engine.run ~policy instance in
        let m = An.Diagnostics.measure run.Engine.packing in
        [
          name;
          Printf.sprintf "%.0f" (Engine.cost run);
          Printf.sprintf "%.3f" (Engine.cost run /. lb);
          string_of_int run.Engine.bins_opened;
          string_of_int run.Engine.max_open_bins;
          Printf.sprintf "%.3f" m.An.Diagnostics.packing_efficiency;
          Printf.sprintf "%.3f" m.An.Diagnostics.departure_spread;
        ])
      Core.Policy.standard_names
  in
  print_string
    (Dvbp_report.Table.render
       ~header:
         [ "policy"; "bill"; "bill/LB"; "servers rented"; "peak fleet";
           "efficiency"; "misalignment" ]
       ~rows);
  print_newline ();
  let best =
    List.fold_left
      (fun acc row ->
        match (acc, row) with
        | None, name :: bill :: _ -> Some (name, float_of_string bill)
        | Some (_, b), name :: bill :: _ when float_of_string bill < b ->
            Some (name, float_of_string bill)
        | _ -> acc)
      None rows
  in
  match best with
  | Some (name, bill) ->
      Printf.printf "cheapest dispatcher on this trace: %s (%.0f server-minutes)\n"
        name bill
  | None -> ()
