(* VM placement scenario (paper §1): VM requests drawn from an instance-type
   catalogue are placed on 64-vCPU physical servers. Heavy-tailed lifetimes
   and a day/night arrival pattern make alignment matter; the example also
   contrasts the non-clairvoyant policies with the clairvoyant
   duration-aligned heuristic (paper §8 future work).

   Run with: dune exec examples/vm_placement.exe *)

module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Bounds = Dvbp_lowerbound.Bounds
module Workload = Dvbp_workload

let () =
  let params = { Workload.Vm_requests.default with Workload.Vm_requests.n = 600 } in
  let instance = Workload.Vm_requests.generate params ~rng:(Rng.create ~seed:9) in
  let lb = Bounds.height_integral instance in
  Printf.printf
    "vm placement: %d requests, server = %s (%s)\n\
     mu (max/min lifetime ratio) = %.1f, lower bound = %.0f server-hours\n\n"
    (Core.Instance.size instance)
    (Dvbp_vec.Vec.to_string instance.Core.Instance.capacity)
    (String.concat "/" Workload.Vm_requests.dimension_names)
    (Core.Instance.mu instance) lb;
  let non_clairvoyant =
    List.map
      (fun name ->
        let policy = Core.Policy.of_name_exn ~rng:(Rng.create ~seed:3) name in
        (name, Engine.run ~policy instance))
      Core.Policy.standard_names
  in
  let clairvoyant =
    [ ("daf*", Engine.run ~clairvoyant:true
                 ~policy:(Core.Policy.duration_aligned_fit ()) instance) ]
  in
  let rows =
    List.map
      (fun (name, run) ->
        [
          name;
          Printf.sprintf "%.0f" (Engine.cost run);
          Printf.sprintf "%.3f" (Engine.cost run /. lb);
          string_of_int run.Engine.bins_opened;
          string_of_int run.Engine.max_open_bins;
        ])
      (non_clairvoyant @ clairvoyant)
  in
  print_string
    (Dvbp_report.Table.render
       ~header:[ "policy"; "server-hours"; "vs LB"; "servers used"; "peak fleet" ]
       ~rows);
  print_endline "\n(* daf* sees departure times — the clairvoyant setting of §8 *)"
