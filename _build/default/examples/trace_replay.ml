(* Round-trips a workload through the CSV trace format — the substitution
   path for replaying converted production traces — and shows that a replay
   reproduces the original run bit-for-bit.

   Run with: dune exec examples/trace_replay.exe *)

module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Workload = Dvbp_workload

let () =
  let params =
    { Workload.Uniform_model.d = 2; n = 200; mu = 10; span = 200; bin_size = 100 }
  in
  let original = Workload.Uniform_model.generate params ~rng:(Rng.create ~seed:31) in
  let csv = Workload.Trace_io.to_string original in
  Printf.printf "serialised %d items to %d bytes of CSV\n"
    (Core.Instance.size original) (String.length csv);
  match Workload.Trace_io.of_string csv with
  | Error e -> prerr_endline ("replay failed: " ^ e); exit 1
  | Ok replayed ->
      let run inst = Engine.run ~policy:(Core.Policy.move_to_front ()) inst in
      let a = run original and b = run replayed in
      Printf.printf "original run: cost %.2f with %d bins\n" (Engine.cost a)
        a.Engine.bins_opened;
      Printf.printf "replayed run: cost %.2f with %d bins\n" (Engine.cost b)
        b.Engine.bins_opened;
      if Engine.cost a = Engine.cost b && a.Engine.bins_opened = b.Engine.bins_opened
      then print_endline "replay is identical — traces are faithful"
      else (print_endline "replay diverged!"; exit 1)
