examples/proof_decomposition.mli:
