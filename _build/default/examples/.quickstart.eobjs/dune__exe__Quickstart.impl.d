examples/quickstart.ml: Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_vec List Printf
