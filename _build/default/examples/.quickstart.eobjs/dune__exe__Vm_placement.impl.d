examples/vm_placement.ml: Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_report Dvbp_vec Dvbp_workload List Printf String
