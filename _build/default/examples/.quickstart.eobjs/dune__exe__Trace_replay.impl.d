examples/trace_replay.ml: Dvbp_core Dvbp_engine Dvbp_prelude Dvbp_workload Printf String
