examples/vm_placement.mli:
