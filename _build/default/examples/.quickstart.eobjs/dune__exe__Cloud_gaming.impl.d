examples/cloud_gaming.ml: Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_report Dvbp_workload List Printf String
