examples/online_dispatcher.ml: Dvbp_core Dvbp_engine Dvbp_prelude Dvbp_vec Float List Printf
