examples/online_dispatcher.mli:
