examples/adversarial_analysis.mli:
