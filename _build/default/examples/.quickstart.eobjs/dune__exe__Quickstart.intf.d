examples/quickstart.mli:
