(* Regenerates the paper's illustrative Figures 1-3 from live engine runs:
   the Move To Front leading/non-leading decomposition, the First Fit P/Q
   decomposition, and the Theorem 5 adversarial execution.

   Run with: dune exec examples/proof_decomposition.exe *)

let () =
  print_string (Dvbp_experiments.Proof_figures.figure1 ());
  print_newline ();
  print_string (Dvbp_experiments.Proof_figures.figure2 ());
  print_newline ();
  print_string (Dvbp_experiments.Proof_figures.figure3 ())
