(** Exact offline optimum {e without} repacking.

    A stricter baseline than {!Opt}: each item is assigned to one bin for
    its whole lifetime (as an online algorithm must), but the assignment is
    chosen with full knowledge of the future. Sits between the online
    algorithms and the repacking OPT:
    [Opt.exact <= Offline.min_cost <= cost(A)] for every online [A].
    Branch-and-bound over assignments in arrival order; exponential — for
    small instances only. *)

val min_cost :
  ?node_limit:int ->
  Dvbp_core.Instance.t ->
  (float, [ `Node_limit of int ]) result
(** Minimum total usage time over all capacity-feasible non-repacking
    assignments (default node budget 2,000,000). *)

val min_cost_exn : ?node_limit:int -> Dvbp_core.Instance.t -> float
(** @raise Failure on node-limit exhaustion. *)
