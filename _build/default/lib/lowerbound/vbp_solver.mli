(** Exact (static) vector bin packing: minimum number of unit bins holding a
    set of size vectors.

    This is the inner problem of the paper's eq. (2): [OPT(R, t)] is the
    smallest number of bins into which the items active at time [t] can be
    repacked. Branch-and-bound with First-Fit-Decreasing seeding, duplicate-
    bin symmetry breaking and a residual-load admissible bound; exact but
    exponential — intended for the instance sizes used in tests and in the
    exact-OPT baselines, with a node budget as a safety valve. *)

val ffd_bins : cap:Dvbp_vec.Vec.t -> Dvbp_vec.Vec.t list -> int
(** First Fit Decreasing (by capacity-relative [L∞] size) — an upper bound
    on the optimum, used to seed the search. [0] for the empty list. *)

val lower_bound : cap:Dvbp_vec.Vec.t -> Dvbp_vec.Vec.t list -> int
(** The height bound [max_j ⌈Σ sizes_j / cap_j⌉]. *)

val min_bins :
  ?node_limit:int ->
  cap:Dvbp_vec.Vec.t ->
  Dvbp_vec.Vec.t list ->
  (int, [ `Node_limit of int ]) result
(** Exact minimum number of bins. Fails with [`Node_limit n] after visiting
    [n] search nodes (default budget: 2,000,000).
    @raise Invalid_argument if some vector does not fit an empty bin. *)

val min_bins_exn : ?node_limit:int -> cap:Dvbp_vec.Vec.t -> Dvbp_vec.Vec.t list -> int
(** @raise Failure on node-limit exhaustion. *)
