module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Item = Dvbp_core.Item
module Instance = Dvbp_core.Instance
module Intmath = Dvbp_prelude.Intmath
module Floatx = Dvbp_prelude.Floatx

(* One dimension: coordinates [xs] in integer units of a capacity [cap].
   For threshold l (= λ·cap, integer in [1, cap/2]):
     x > cap - l  ->  cap
     l <= x       ->  x
     otherwise    ->  0
   and the bound is ⌈Σ / cap⌉. All exact. *)
let dimension_bound ~cap xs =
  let plain = Intmath.ceil_div (List.fold_left ( + ) 0 xs) cap in
  let candidates =
    (* thresholds only matter where some item changes bucket: at x and at
       cap - x + 1 for each distinct coordinate x, clamped to [1, cap/2] *)
    List.concat_map (fun x -> [ x; cap - x + 1 ]) xs
    |> List.filter (fun l -> l >= 1 && 2 * l <= cap)
    |> List.sort_uniq Int.compare
  in
  List.fold_left
    (fun best l ->
      let total =
        List.fold_left
          (fun acc x ->
            if x > cap - l then acc + cap else if x >= l then acc + x else acc)
          0 xs
      in
      Int.max best (Intmath.ceil_div total cap))
    plain candidates

let slice_bound ~cap sizes =
  match sizes with
  | [] -> 0
  | _ ->
      let d = Vec.dim cap in
      let best = ref 0 in
      for j = 0 to d - 1 do
        let xs = List.map (fun v -> Vec.get v j) sizes in
        best := Int.max !best (dimension_bound ~cap:(Vec.get cap j) xs)
      done;
      !best

let integral (inst : Instance.t) =
  let cap = inst.Instance.capacity in
  Floatx.kahan_sum
    (List.map
       (fun (s : Load_profile.active_segment) ->
         let sizes = List.map (fun (r : Item.t) -> r.Item.size) s.Load_profile.active in
         float_of_int (slice_bound ~cap sizes)
         *. Interval.length s.Load_profile.interval)
       (Load_profile.active_segments inst))
