module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item
module Imap = Map.Make (Int)

type segment = { interval : Interval.t; load : Vec.t }
type active_segment = { interval : Interval.t; active : Item.t list }

(* One sweep skeleton shared by the three functions: calls [emit prev_t t]
   for every maximal segment between consecutive event times during which at
   least one item is active, with [apply] updating state at each boundary. *)
let sweep (inst : Instance.t) ~apply ~emit =
  let events =
    List.concat_map
      (fun (r : Item.t) -> [ (r.Item.arrival, `Add r); (r.Item.departure, `Remove r) ])
      inst.Instance.items
  in
  let key = function
    | t, `Remove (r : Item.t) -> (t, 0, r.Item.id)
    | t, `Add (r : Item.t) -> (t, 1, r.Item.id)
  in
  let events = List.sort (fun a b -> compare (key a) (key b)) events in
  let active = ref 0 in
  let prev = ref nan in
  List.iter
    (fun (t, change) ->
      if !active > 0 && !prev < t then emit !prev t;
      (match change with `Add _ -> incr active | `Remove _ -> decr active);
      apply change;
      prev := t)
    events;
  assert (!active = 0)

let load_segments inst =
  let d = Instance.dim inst in
  let load = Array.make d 0 in
  let out = ref [] in
  let apply = function
    | `Add (r : Item.t) ->
        Array.iteri (fun j x -> load.(j) <- x + Vec.get r.Item.size j) load
    | `Remove (r : Item.t) ->
        Array.iteri (fun j x -> load.(j) <- x - Vec.get r.Item.size j) load
  in
  let emit lo hi =
    out := { interval = Interval.make lo hi; load = Vec.of_array load } :: !out
  in
  sweep inst ~apply ~emit;
  List.rev !out

let active_segments inst =
  let current = ref Imap.empty in
  let out = ref [] in
  let apply = function
    | `Add (r : Item.t) -> current := Imap.add r.Item.id r !current
    | `Remove (r : Item.t) -> current := Imap.remove r.Item.id !current
  in
  let emit lo hi =
    let active = List.map snd (Imap.bindings !current) in
    out := { interval = Interval.make lo hi; active } :: !out
  in
  sweep inst ~apply ~emit;
  List.rev !out

let max_active inst =
  let count = ref 0 and peak = ref 0 in
  let apply = function
    | `Add _ ->
        incr count;
        if !count > !peak then peak := !count
    | `Remove _ -> decr count
  in
  sweep inst ~apply ~emit:(fun _ _ -> ());
  !peak
