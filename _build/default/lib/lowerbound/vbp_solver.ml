module Vec = Dvbp_vec.Vec

module Vset = Set.Make (struct
  type t = Vec.t

  let compare = Vec.compare
end)

let check_items ~cap items =
  let zero = Vec.zero ~dim:(Vec.dim cap) in
  List.iter
    (fun v ->
      if not (Vec.fits ~cap ~load:zero v) then
        invalid_arg "Vbp_solver: item does not fit an empty bin")
    items

(* Sort descending by relative L∞ size, then lexicographically for
   determinism: large items first shrinks the search tree. *)
let sort_desc ~cap items =
  List.sort
    (fun a b ->
      match Float.compare (Vec.linf ~cap b) (Vec.linf ~cap a) with
      | 0 -> Vec.compare b a
      | c -> c)
    items

let ffd_bins ~cap items =
  check_items ~cap items;
  let bins = ref [] in
  List.iter
    (fun v ->
      let rec place = function
        | [] -> bins := !bins @ [ ref v ]
        | b :: rest ->
            if Vec.fits ~cap ~load:!b v then b := Vec.add !b v else place rest
      in
      place !bins)
    (sort_desc ~cap items);
  List.length !bins

let lower_bound ~cap items =
  match items with
  | [] -> 0
  | _ -> Vec.height ~cap (Vec.sum ~dim:(Vec.dim cap) items)

let min_bins ?(node_limit = 2_000_000) ~cap items =
  check_items ~cap items;
  match items with
  | [] -> Ok 0
  | _ -> (
      let items = Array.of_list (sort_desc ~cap items) in
      let n = Array.length items in
      let d = Vec.dim cap in
      (* suffix.(i) = total size of items i..n-1, for the residual bound *)
      let suffix = Array.make (n + 1) (Vec.zero ~dim:d) in
      for i = n - 1 downto 0 do
        suffix.(i) <- Vec.add suffix.(i + 1) items.(i)
      done;
      let best = ref (ffd_bins ~cap (Array.to_list items)) in
      let global_lb = lower_bound ~cap (Array.to_list items) in
      let nodes = ref 0 in
      let exception Limit in
      (* Residual bound: remaining load that cannot go into open bins' free
         space forces at least ⌈excess/cap⌉ fresh bins in some dimension. *)
      let residual_extra_bins bins i =
        let extra = ref 0 in
        for j = 0 to d - 1 do
          let free =
            List.fold_left (fun acc b -> acc + (Vec.get cap j - Vec.get b j)) 0 bins
          in
          let excess = Vec.get suffix.(i) j - free in
          if excess > 0 then
            extra := Int.max !extra (Dvbp_prelude.Intmath.ceil_div excess (Vec.get cap j))
        done;
        !extra
      in
      let rec dfs i bins used =
        incr nodes;
        if !nodes > node_limit then raise Limit;
        if i = n then (if used < !best then best := used)
        else if used + residual_extra_bins bins i < !best then begin
          let v = items.(i) in
          (* try each distinct existing load exactly once (identical bins
             are interchangeable) *)
          let seen = ref Vset.empty in
          let rec try_bins acc = function
            | [] -> ()
            | b :: rest ->
                if (not (Vset.mem b !seen)) && Vec.fits ~cap ~load:b v then begin
                  seen := Vset.add b !seen;
                  dfs (i + 1) (List.rev_append acc (Vec.add b v :: rest)) used
                end;
                try_bins (b :: acc) rest
          in
          try_bins [] bins;
          if used + 1 < !best then dfs (i + 1) (v :: bins) (used + 1)
        end
      in
      try
        if global_lb < !best then dfs 0 [] 0;
        Ok !best
      with Limit -> Error (`Node_limit node_limit))

let min_bins_exn ?node_limit ~cap items =
  match min_bins ?node_limit ~cap items with
  | Ok n -> n
  | Error (`Node_limit n) ->
      failwith (Printf.sprintf "Vbp_solver: node limit %d exceeded" n)
