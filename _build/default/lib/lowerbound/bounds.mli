(** Lower bounds on the optimal cost [OPT(R)] — Lemma 1 of the paper.

    All values are in cost units (bin-time). The paper's experiments
    normalise algorithm costs by {!height_integral}, which is the tightest
    of the three. *)

val span : Dvbp_core.Instance.t -> float
(** Lemma 1 (iii): [OPT >= span(R)] — some bin is open whenever an item is
    active. *)

val utilisation : Dvbp_core.Instance.t -> float
(** Lemma 1 (ii): [OPT >= (1/d) Σ_r ‖s(r)‖∞ ℓ(I(r))] — total time-space
    utilisation divided by the dimension. *)

val height_integral : Dvbp_core.Instance.t -> float
(** Lemma 1 (i): [OPT >= ∫ ⌈‖s(R,t)‖∞⌉ dt] — at each instant at least
    [max_j ⌈load_j / cap_j⌉] bins are needed. Dominates both other
    bounds. *)

val best : Dvbp_core.Instance.t -> float
(** [max] of the three (equals {!height_integral}, computed defensively). *)
