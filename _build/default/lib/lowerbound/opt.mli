(** Exact optimal offline cost, [OPT(R)].

    The paper's optimum may repack items at any time, so by eq. (2)
    [OPT(R) = ∫ OPT(R, t) dt] where [OPT(R, t)] is the exact vector
    bin packing optimum of the items active at [t]. The integrand is
    piecewise constant, so the integral is a finite sum over the constant-
    load segments, each solved exactly by {!Vbp_solver}. Exponential in the
    peak number of simultaneously active items — use on small instances
    (tests, bound verification), not on the Figure 4 workloads. *)

val exact :
  ?node_limit:int ->
  Dvbp_core.Instance.t ->
  (float, [ `Node_limit of int ]) result
(** Exact [OPT(R)]. The node budget applies per segment. *)

val exact_exn : ?node_limit:int -> Dvbp_core.Instance.t -> float
(** @raise Failure on node-limit exhaustion. *)

val profile : ?node_limit:int -> Dvbp_core.Instance.t ->
  ((Dvbp_interval.Interval.t * int) list, [ `Node_limit of int ]) result
(** The step function [t ↦ OPT(R, t)] as (segment, bins) pairs — eq. (2)'s
    integrand, useful for plots and tests. *)
