module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item

(* A bin under construction: its items, cached activity span and cost. *)
type pbin = { items : Item.t list; spanned : Interval_set.t }

let pbin_cost b = Interval_set.total_length b.spanned

(* Adding [r] to bin [b] is feasible iff at the start of every item's
   activity the combined load fits. Loads only increase at arrivals, so
   checking arrival instants of the bin's items (including r) suffices. *)
let feasible ~cap b (r : Item.t) =
  let items = r :: b.items in
  List.for_all
    (fun (probe : Item.t) ->
      let t = probe.Item.arrival in
      let load =
        Vec.sum ~dim:(Vec.dim cap)
          (List.filter_map
             (fun (x : Item.t) -> if Item.active_at x t then Some x.Item.size else None)
             items)
      in
      Vec.le load cap)
    items

let add_item b (r : Item.t) =
  { items = r :: b.items; spanned = Interval_set.add (Item.interval r) b.spanned }

let min_cost ?(node_limit = 2_000_000) (inst : Instance.t) =
  let cap = inst.Instance.capacity in
  let items = Array.of_list inst.Instance.items (* already in arrival order *) in
  let n = Array.length items in
  let best = ref infinity in
  let nodes = ref 0 in
  let exception Limit in
  let total_cost bins =
    Dvbp_prelude.Floatx.kahan_sum (List.map pbin_cost bins)
  in
  let rec dfs i bins cost =
    incr nodes;
    if !nodes > node_limit then raise Limit;
    if cost >= !best then ()
    else if i = n then best := cost
    else begin
      let r = items.(i) in
      (* Existing bins: skip those whose content set we already tried (two
         bins are equivalent iff they hold the same items; contents here are
         always distinct, so no dedup is needed beyond feasibility). *)
      List.iteri
        (fun k b ->
          if feasible ~cap b r then begin
            let b' = add_item b r in
            let bins' = List.mapi (fun k' x -> if k' = k then b' else x) bins in
            dfs (i + 1) bins' (total_cost bins')
          end)
        bins;
      (* One fresh bin (all empty bins are interchangeable). *)
      let fresh = add_item { items = []; spanned = Interval_set.empty } r in
      let bins' = fresh :: bins in
      dfs (i + 1) bins' (cost +. pbin_cost fresh)
    end
  in
  try
    dfs 0 [] 0.0;
    Ok !best
  with Limit -> Error (`Node_limit node_limit)

let min_cost_exn ?node_limit inst =
  match min_cost ?node_limit inst with
  | Ok x -> x
  | Error (`Node_limit n) ->
      failwith (Printf.sprintf "Offline: node limit %d exceeded" n)
