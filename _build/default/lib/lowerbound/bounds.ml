module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Instance = Dvbp_core.Instance
module Floatx = Dvbp_prelude.Floatx

let span = Instance.span

let utilisation inst =
  Instance.total_utilisation inst /. float_of_int (Instance.dim inst)

let height_integral (inst : Instance.t) =
  let cap = inst.Instance.capacity in
  Floatx.kahan_sum
    (List.map
       (fun (s : Load_profile.segment) ->
         float_of_int (Vec.height ~cap s.Load_profile.load)
         *. Interval.length s.Load_profile.interval)
       (Load_profile.load_segments inst))

let best inst =
  Float.max (height_integral inst) (Float.max (span inst) (utilisation inst))
