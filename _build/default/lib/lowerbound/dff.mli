(** Dual-feasible-function (DFF) lower bounds on per-instant bin counts.

    Lemma 1 (i) bounds [OPT(R, t)] by the ceiling of the most-loaded
    dimension. The classical DFF family of Martello–Toth / Fekete–Schepers
    tightens this: for a threshold [λ ∈ (0, 1/2]] the function

    {v u_λ(x) = 1      if x > 1 − λ
        u_λ(x) = x      if λ <= x <= 1 − λ
        u_λ(x) = 0      if x < λ v}

    maps any feasible single-bin content to total at most 1, so
    [⌈Σ_i u_λ(x_i)⌉] bins are necessary. Items just over half a bin are
    rounded up to a whole bin, which the plain height bound cannot see
    (e.g. three items of size 0.6 need 3 bins, height says 2).

    Everything is computed in exact integer units of [1/cap_j]; the final
    bound is maximised over all dimensions and all useful thresholds, and
    always dominates the height bound (take [λ → 0]). *)

val slice_bound : cap:Dvbp_vec.Vec.t -> Dvbp_vec.Vec.t list -> int
(** Minimum bins forced by the item sizes at one instant:
    [max_j max_λ ⌈Σ_i u_λ(size_i_j / cap_j)⌉]. At least
    {!Vbp_solver.lower_bound} and at most the true optimum. [0] for the
    empty list. *)

val integral : Dvbp_core.Instance.t -> float
(** [∫ slice_bound(R, t) dt] — a lower bound on [OPT(R)] that dominates
    {!Bounds.height_integral}. *)
