lib/lowerbound/offline.mli: Dvbp_core
