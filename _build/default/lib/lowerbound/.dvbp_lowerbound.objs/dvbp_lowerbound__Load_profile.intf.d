lib/lowerbound/load_profile.mli: Dvbp_core Dvbp_interval Dvbp_vec
