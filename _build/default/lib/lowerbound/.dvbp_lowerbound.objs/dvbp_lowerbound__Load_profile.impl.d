lib/lowerbound/load_profile.ml: Array Dvbp_core Dvbp_interval Dvbp_vec Int List Map
