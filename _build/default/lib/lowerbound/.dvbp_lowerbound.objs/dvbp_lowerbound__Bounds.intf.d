lib/lowerbound/bounds.mli: Dvbp_core
