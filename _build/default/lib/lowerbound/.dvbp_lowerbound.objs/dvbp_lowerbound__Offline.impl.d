lib/lowerbound/offline.ml: Array Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec List Printf
