lib/lowerbound/opt.mli: Dvbp_core Dvbp_interval
