lib/lowerbound/vbp_solver.mli: Dvbp_vec
