lib/lowerbound/vbp_solver.ml: Array Dvbp_prelude Dvbp_vec Float Int List Printf Set
