lib/lowerbound/bounds.ml: Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec Float List Load_profile
