lib/lowerbound/dff.mli: Dvbp_core Dvbp_vec
