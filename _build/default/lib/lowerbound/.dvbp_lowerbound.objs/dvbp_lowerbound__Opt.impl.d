lib/lowerbound/opt.ml: Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec List Load_profile Printf Vbp_solver
