lib/lowerbound/dff.ml: Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec Int List Load_profile
