module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Instance = Dvbp_core.Instance
module Item = Dvbp_core.Item
module Floatx = Dvbp_prelude.Floatx

let profile ?node_limit (inst : Instance.t) =
  let cap = inst.Instance.capacity in
  let segments = Load_profile.active_segments inst in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (s : Load_profile.active_segment) :: rest -> (
        let sizes = List.map (fun (r : Item.t) -> r.Item.size) s.Load_profile.active in
        match Vbp_solver.min_bins ?node_limit ~cap sizes with
        | Ok bins -> go ((s.Load_profile.interval, bins) :: acc) rest
        | Error _ as e -> e)
  in
  go [] segments

let exact ?node_limit inst =
  match profile ?node_limit inst with
  | Error _ as e -> e
  | Ok steps ->
      Ok
        (Floatx.kahan_sum
           (List.map (fun (iv, bins) -> float_of_int bins *. Interval.length iv) steps))

let exact_exn ?node_limit inst =
  match exact ?node_limit inst with
  | Ok x -> x
  | Error (`Node_limit n) -> failwith (Printf.sprintf "Opt: node limit %d exceeded" n)
