(** Piecewise-constant total-load profile of an instance.

    The quantity [s(R, t)] — total size of items active at time [t] — is
    constant between consecutive arrival/departure events. Both Lemma 1 (i)
    and the exact OPT of eq. (2) are integrals of per-instant quantities, so
    they reduce to sums over these segments. *)

type segment = {
  interval : Dvbp_interval.Interval.t;
  load : Dvbp_vec.Vec.t;  (** [s(R, t)] for every [t] in the segment *)
}

val load_segments : Dvbp_core.Instance.t -> segment list
(** Maximal constant-load segments covering exactly the instance's activity
    (segments where nothing is active are omitted), in time order. Runs in
    [O(n log n + n d)] via an incremental sweep. *)

type active_segment = {
  interval : Dvbp_interval.Interval.t;
  active : Dvbp_core.Item.t list;  (** items active throughout, id order *)
}

val active_segments : Dvbp_core.Instance.t -> active_segment list
(** Like {!load_segments} but materialising the active item set of every
    segment (quadratic in the worst case — intended for the small instances
    fed to the exact OPT solver). *)

val max_active : Dvbp_core.Instance.t -> int
(** Peak number of simultaneously active items. *)
