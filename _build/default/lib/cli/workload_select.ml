module Rng = Dvbp_prelude.Rng
module W = Dvbp_workload

type source = {
  workload : string;
  trace : string option;
  d : int;
  mu : int;
  n : int;
  rho : float;
  seed : int;
}

let known_workloads = [ "uniform"; "gaming"; "vm"; "correlated"; "bursty" ]

let build s =
  match s.trace with
  | Some path -> W.Trace_io.read_file path
  | None -> (
      let rng = Rng.create ~seed:s.seed in
      let uniform_params =
        { (W.Uniform_model.table2 ~d:s.d ~mu:s.mu) with W.Uniform_model.n = s.n }
      in
      try
        match s.workload with
        | "uniform" -> Ok (W.Uniform_model.generate uniform_params ~rng)
        | "gaming" ->
            Ok (W.Cloud_gaming.generate
                  { W.Cloud_gaming.default with W.Cloud_gaming.n = s.n } ~rng)
        | "vm" ->
            Ok (W.Vm_requests.generate
                  { W.Vm_requests.default with W.Vm_requests.n = s.n } ~rng)
        | "correlated" ->
            Ok (W.Correlated.generate
                  { W.Correlated.base = uniform_params; rho = s.rho } ~rng)
        | "bursty" ->
            Ok (W.Bursty.generate
                  { W.Bursty.default with W.Bursty.base = uniform_params } ~rng)
        | other ->
            Error
              (Printf.sprintf "unknown workload %S (known: %s)" other
                 (String.concat ", " known_workloads))
      with Invalid_argument msg -> Error msg)
