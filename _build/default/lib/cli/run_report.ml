(* Shared bits of the CLI: run one named policy on an instance and print a
   cost report (plus optional Gantt). *)

module Rng = Dvbp_prelude.Rng
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module Bounds = Dvbp_lowerbound.Bounds
module An = Dvbp_analysis

let run_one ?export ?(trajectory = false) ~policy ~seed instance ~gantt =
  let clairvoyant = policy = "daf" || policy = "hff" in
  match Core.Policy.of_name ~rng:(Rng.create ~seed) policy with
  | Error e -> Error e
  | Ok p ->
      let run = Engine.run ~clairvoyant ~policy:p instance in
      let lb = Bounds.height_integral instance in
      Printf.printf "instance: n=%d d=%d mu=%.2f span=%.2f\n"
        (Core.Instance.size instance)
        (Core.Instance.dim instance)
        (Core.Instance.mu instance)
        (Core.Instance.span instance);
      Printf.printf "policy %s%s: cost=%.4f bins=%d peak=%d cost/LB=%.4f\n"
        p.Core.Policy.name
        (if clairvoyant then " (clairvoyant)" else "")
        (Engine.cost run) run.Engine.bins_opened run.Engine.max_open_bins
        (Engine.cost run /. lb);
      let m = An.Diagnostics.measure run.Engine.packing in
      Format.printf "diagnostics: %a@." An.Diagnostics.pp m;
      (match Core.Packing.validate instance run.Engine.packing with
      | Ok () -> print_endline "packing: valid"
      | Error es ->
          print_endline "packing: INVALID";
          List.iter print_endline es);
      if gantt then print_string (An.Gantt.render run.Engine.packing);
      if trajectory then begin
        let points = An.Online_monitor.trajectory instance run.Engine.trace in
        let series =
          {
            Dvbp_report.Ascii_plot.label = "cost/LB so far";
            marker = '*';
            points =
              List.filter_map
                (fun (p : An.Online_monitor.point) ->
                  if p.An.Online_monitor.lower_bound_so_far > 0.0 then
                    Some
                      ( p.An.Online_monitor.time,
                        p.An.Online_monitor.cost_so_far
                        /. p.An.Online_monitor.lower_bound_so_far )
                  else None)
                points;
          }
        in
        print_string
          (Dvbp_report.Ascii_plot.render ~x_label:"time" ~y_label:"ratio" [ series ]);
        Printf.printf "peak momentary ratio: %.4f\n" (An.Online_monitor.peak_ratio points)
      end;
      (match export with
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Core.Packing.to_csv run.Engine.packing));
          Printf.printf "assignments written to %s\n" path
      | None -> ());
      Ok ()
