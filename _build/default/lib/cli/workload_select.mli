(** Workload selection shared by the command-line tool: build an instance
    from a named generator or a CSV trace. Lives in a library (rather than
    the executable) so the dispatch and its error paths are unit-tested. *)

type source = {
  workload : string;  (** "uniform" | "gaming" | "vm" | "correlated" | "bursty" *)
  trace : string option;  (** CSV path; overrides [workload] when present *)
  d : int;
  mu : int;
  n : int;
  rho : float;  (** correlation, only for "correlated" *)
  seed : int;
}

val build : source -> (Dvbp_core.Instance.t, string) result
(** Generates (or loads) the instance. All generator validation errors are
    surfaced as [Error]. *)

val known_workloads : string list
