lib/cli/workload_select.ml: Dvbp_prelude Dvbp_workload Printf String
