lib/cli/workload_select.mli: Dvbp_core
