lib/cli/run_report.ml: Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_report Format List Out_channel Printf
