lib/cli/run_report.mli: Dvbp_core
