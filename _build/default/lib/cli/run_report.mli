(** One-shot "run a policy and report" used by the [dvbp run] and
    [dvbp adversary] subcommands: simulate, print cost / lower-bound /
    diagnostics, certify the packing, optionally draw a Gantt chart. *)

val run_one :
  ?export:string ->
  ?trajectory:bool ->
  policy:string ->
  seed:int ->
  Dvbp_core.Instance.t ->
  gantt:bool ->
  (unit, string) result
(** Prints the report to stdout. [policy] accepts every
    {!Dvbp_core.Policy.of_name} name; clairvoyant policies (["daf"],
    ["hff"]) run with departures visible. [export] writes the final
    assignment as CSV to the given path; [trajectory] (default false) also
    plots the live cost / observable-lower-bound ratio over time. *)
