lib/vec/vec.ml: Array Dvbp_prelude Format List Printf Stdlib
