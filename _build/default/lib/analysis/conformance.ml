module Vec = Dvbp_vec.Vec
module Core = Dvbp_core
module Item = Core.Item
module Instance = Core.Instance
module Load_measure = Core.Load_measure
module Trace = Dvbp_engine.Trace
module Listx = Dvbp_prelude.Listx

type semantics =
  | First_fit
  | Last_fit
  | Best_fit of Load_measure.t
  | Worst_fit of Load_measure.t
  | Move_to_front
  | Next_fit

let semantics_of_name = function
  | "ff" -> Some First_fit
  | "lf" -> Some Last_fit
  | "bf" -> Some (Best_fit Load_measure.Linf)
  | "wf" -> Some (Worst_fit Load_measure.Linf)
  | "mtf" -> Some Move_to_front
  | "nf" -> Some Next_fit
  | _ -> None

type violation = {
  time : float;
  item_id : int;
  chosen_bin : int option;
  expected_bin : int option;
  reason : string;
}

(* replayed bin state, maintained purely from the trace *)
type rbin = {
  id : int;
  mutable load : Vec.t;
  mutable last_used : int;
  mutable received : int;  (* placements so far; 0 = freshly opened *)
}

let check semantics (instance : Instance.t) trace =
  let cap = instance.Instance.capacity in
  let item_size =
    let table = Hashtbl.create 64 in
    List.iter
      (fun (r : Item.t) -> Hashtbl.replace table r.Item.id r.Item.size)
      instance.Instance.items;
    fun id -> Hashtbl.find table id
  in
  let bins : (int, rbin) Hashtbl.t = Hashtbl.create 64 in
  let open_order = ref [] (* ascending ids; bins open, including fresh *) in
  let touch = ref 0 in
  let current = ref None (* Next Fit's current bin id *) in
  let violations = ref [] in
  let report v = violations := v :: !violations in

  let expected_existing_bin size =
    (* candidates: open bins that have already received an item *)
    let candidates =
      List.filter_map
        (fun id ->
          let b = Hashtbl.find bins id in
          if b.received > 0 then Some b else None)
        (List.rev !open_order)
    in
    let fitting = List.filter (fun b -> Vec.fits ~cap ~load:b.load size) candidates in
    match semantics with
    | First_fit -> Option.map (fun b -> b.id) (List.nth_opt fitting 0)
    | Last_fit -> Option.map (fun b -> b.id) (Listx.max_by (fun b -> b.id) fitting)
    | Best_fit m ->
        Option.map (fun b -> b.id)
          (Listx.max_by (fun b -> Load_measure.apply m ~cap b.load) fitting)
    | Worst_fit m ->
        Option.map (fun b -> b.id)
          (Listx.min_by (fun b -> Load_measure.apply m ~cap b.load) fitting)
    | Move_to_front ->
        Option.map (fun b -> b.id) (Listx.max_by (fun b -> b.last_used) fitting)
    | Next_fit -> (
        match !current with
        | Some id -> (
            match Hashtbl.find_opt bins id with
            | Some b when Vec.fits ~cap ~load:b.load size -> Some id
            | Some _ | None -> None)
        | None -> None)
  in

  List.iter
    (fun event ->
      match event with
      | Trace.Opened { bin_id; _ } ->
          incr touch;
          Hashtbl.replace bins bin_id
            { id = bin_id; load = Vec.zero ~dim:(Vec.dim cap); last_used = !touch;
              received = 0 };
          open_order := bin_id :: !open_order
      | Trace.Placed { time; item_id; bin_id } -> (
          let size = item_size item_id in
          let b = Hashtbl.find bins bin_id in
          let fresh = b.received = 0 in
          let expected = expected_existing_bin size in
          (match (expected, fresh) with
          | Some want, true ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = None;
                  expected_bin = Some want;
                  reason = "opened a fresh bin although an admissible bin fits";
                }
          | Some want, false when want <> bin_id ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = Some bin_id;
                  expected_bin = Some want;
                  reason = "placed in the wrong bin for these semantics";
                }
          | Some _, false -> ()
          | None, true -> ()
          | None, false ->
              report
                {
                  time;
                  item_id;
                  chosen_bin = Some bin_id;
                  expected_bin = None;
                  reason = "reused a bin although a fresh bin was required";
                });
          incr touch;
          b.load <- Vec.add b.load size;
          b.last_used <- !touch;
          b.received <- b.received + 1;
          match semantics with Next_fit -> current := Some bin_id | _ -> ())
      | Trace.Departed { item_id; bin_id; _ } ->
          let b = Hashtbl.find bins bin_id in
          b.load <- Vec.sub b.load (item_size item_id)
      | Trace.Closed { bin_id; _ } ->
          Hashtbl.remove bins bin_id;
          open_order := List.filter (fun id -> id <> bin_id) !open_order;
          if !current = Some bin_id then current := None)
    (Trace.events trace);
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let pp_violation ppf v =
  let pp_bin ppf = function
    | None -> Format.fprintf ppf "fresh"
    | Some id -> Format.fprintf ppf "bin %d" id
  in
  Format.fprintf ppf "t=%g item %d: chose %a, expected %a (%s)" v.time v.item_id
    pp_bin v.chosen_bin pp_bin v.expected_bin v.reason
