(** Current-bin decomposition of a Next Fit run (Theorem 4's analysis).

    Next Fit keeps one current bin; bin [i]'s usage splits into [P_i]
    (while current) and [Q_i] (after release, kept open only by items that
    are still running).
    [P_i] ends at the earlier of: the opening of bin [i+1], or bin [i]'s own
    closing. The [P_i] partition the activity span. *)

type bin_decomposition = {
  bin_id : int;
  usage : Dvbp_interval.Interval.t;
  current : Dvbp_interval.Interval.t;  (** [P_i] *)
  released : Dvbp_interval.Interval.t;  (** [Q_i]; possibly empty *)
}

type t = { bins : bin_decomposition list }

val analyse : Dvbp_engine.Trace.t -> t
(** Reconstructs the periods from opening/closing events. Meaningful for
    traces produced by the [nf] policy. *)

val current_total : t -> float
(** [Σ ℓ(P_i)] — at most [span(R)], which is all Theorem 4's proof needs.
    (Strict inequality is possible: when the current bin closes while a
    released bin is still running, no bin is current for a while.) *)

val released_max : t -> float
(** Longest released stretch — bounded by [µ] in the Theorem 4 proof. *)

val check_disjoint_within_activity :
  t -> activity:Dvbp_interval.Interval_set.t -> bool
(** The [P_i] are pairwise disjoint and contained in the activity set —
    the inequality [Σ ℓ(P_i) <= span(R)] used by the proof. *)
