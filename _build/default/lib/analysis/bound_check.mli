(** Checks of the paper's proven competitive-ratio upper bounds against
    concrete executions.

    For an instance with duration ratio [µ] in [d] dimensions the paper
    proves: [cost(MTF) <= ((2µ+1)d + 1)·OPT] (Thm 2),
    [cost(FF) <= ((µ+2)d + 1)·OPT] (Thm 3), [cost(NF) <= (2µd + 1)·OPT]
    (Thm 4). A single violated inequality on any instance would falsify the
    implementation (or the theorem), so tests fuzz these checks against the
    exact OPT on small instances. *)

type verdict = {
  policy : string;
  cost : float;
  opt : float;
  ratio : float;
  bound : float;  (** the theorem's bound instantiated at this µ and d *)
  ok : bool;  (** [ratio <= bound] (within float tolerance) *)
}

val theoretical_bound : policy:string -> mu:float -> d:int -> float option
(** The proven upper bound for ["mtf"], ["ff"], ["nf"]; [None] for policies
    with no bounded CR (Best Fit & co). *)

val check :
  policy:string ->
  cost:float ->
  opt:float ->
  instance:Dvbp_core.Instance.t ->
  verdict option
(** Instantiates the bound at the instance's [µ] and [d]; [None] when the
    policy has no proven bound. [opt] must be a lower bound on (or the
    exact) optimal cost. *)

val pp_verdict : Format.formatter -> verdict -> unit
