module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Trace = Dvbp_engine.Trace
module Floatx = Dvbp_prelude.Floatx

type bin_decomposition = {
  bin_id : int;
  usage : Interval.t;
  current : Interval.t;
  released : Interval.t;
}

type t = { bins : bin_decomposition list }

let analyse trace =
  let openings = Trace.openings trace in
  let closings = Trace.closings trace in
  let close_of bin_id =
    match List.assoc_opt bin_id (List.map (fun (t, b) -> (b, t)) closings) with
    | Some t -> t
    | None -> invalid_arg "Nf_decomposition: trace has an unclosed bin"
  in
  let rec go = function
    | [] -> []
    | (open_t, bin_id) :: rest ->
        let close_t = close_of bin_id in
        (* the bin stops being current when the next bin opens (a release)
           or when it closes, whichever is first *)
        let release_t =
          match rest with
          | (next_open, _) :: _ -> Float.min close_t next_open
          | [] -> close_t
        in
        {
          bin_id;
          usage = Interval.make open_t close_t;
          current = Interval.make open_t release_t;
          released = Interval.make release_t close_t;
        }
        :: go rest
  in
  { bins = go openings }

let current_total t =
  Floatx.kahan_sum (List.map (fun b -> Interval.length b.current) t.bins)

let released_max t =
  List.fold_left (fun acc b -> Float.max acc (Interval.length b.released)) 0.0 t.bins

let check_disjoint_within_activity t ~activity =
  let union = Interval_set.of_intervals (List.map (fun b -> b.current) t.bins) in
  (* disjoint: merged total equals the sum of the pieces *)
  Floatx.approx_equal (current_total t) (Interval_set.total_length union)
  && Interval_set.is_empty (Interval_set.diff union activity)
