(** Packing / alignment diagnostics — quantifying §7's intuitive discussion.

    The paper explains average-case performance through two informal forces:
    {e packing} (how tightly bins are filled — Best Fit good, Worst Fit bad)
    and {e alignment} (how well co-located items' departures coincide —
    Move To Front and Next Fit good). These metrics make both measurable on
    a concrete packing. *)

type t = {
  packing_efficiency : float;
      (** time-space utilisation of the items divided by the total bin time:
          [Σ_r ‖s(r)‖∞ ℓ(I(r)) / cost]. Higher = tighter packing. *)
  departure_spread : float;
      (** mean over bins of (last departure − first departure) divided by
          the bin's usage length. Lower = better aligned departures. *)
  mean_items_per_bin : float;
  singleton_bin_fraction : float;
      (** fraction of bins that only ever held one item — a signature of the
          stranded-bin failure mode the adversarial gadgets exploit. *)
}

val measure : Dvbp_core.Packing.t -> t
(** @raise Invalid_argument on an empty packing. *)

val pp : Format.formatter -> t -> unit
