module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Trace = Dvbp_engine.Trace
module Load_profile = Dvbp_lowerbound.Load_profile

type point = {
  time : float;
  cost_so_far : float;
  lower_bound_so_far : float;
  open_bins : int;
  active_items : int;
}

let trajectory (instance : Dvbp_core.Instance.t) trace =
  let cap = instance.Dvbp_core.Instance.capacity in
  (* prefix-integrable height profile: (lo, hi, height) triples in order *)
  let segments =
    List.map
      (fun (s : Load_profile.segment) ->
        ( s.Load_profile.interval.Interval.lo,
          s.Load_profile.interval.Interval.hi,
          float_of_int (Vec.height ~cap s.Load_profile.load) ))
      (Load_profile.load_segments instance)
  in
  let lb_upto t =
    List.fold_left
      (fun acc (lo, hi, h) ->
        if t <= lo then acc else acc +. (h *. (Float.min t hi -. lo)))
      0.0 segments
  in
  let events = Trace.events trace in
  let times =
    List.sort_uniq Float.compare (List.map Trace.time_of events)
  in
  let apply (opens, actives) = function
    | Trace.Opened _ -> (opens + 1, actives)
    | Trace.Closed _ -> (opens - 1, actives)
    | Trace.Placed _ -> (opens, actives + 1)
    | Trace.Departed _ -> (opens, actives - 1)
  in
  (* events are chronological, so the events at time [t] are a prefix *)
  let rec split_prefix t acc = function
    | e :: rest when Trace.time_of e = t -> split_prefix t (e :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec walk times events (opens, actives) prev_time cost acc =
    match times with
    | [] -> List.rev acc
    | t :: rest ->
        let cost = cost +. (float_of_int opens *. (t -. prev_time)) in
        let now_events, later = split_prefix t [] events in
        let opens, actives = List.fold_left apply (opens, actives) now_events in
        let point =
          {
            time = t;
            cost_so_far = cost;
            lower_bound_so_far = lb_upto t;
            open_bins = opens;
            active_items = actives;
          }
        in
        walk rest later (opens, actives) t cost (point :: acc)
  in
  match times with
  | [] -> []
  | first :: _ -> walk times events (0, 0) first 0.0 []

let last = function
  | [] -> invalid_arg "Online_monitor: empty trajectory"
  | points -> List.nth points (List.length points - 1)

let final_ratio points =
  let p = last points in
  p.cost_so_far /. p.lower_bound_so_far

let peak_ratio points =
  match points with
  | [] -> invalid_arg "Online_monitor: empty trajectory"
  | _ ->
      List.fold_left
        (fun acc p ->
          if p.lower_bound_so_far > 0.0 then
            Float.max acc (p.cost_so_far /. p.lower_bound_so_far)
          else acc)
        1.0 points
