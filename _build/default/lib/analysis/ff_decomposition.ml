module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Packing = Dvbp_core.Packing
module Floatx = Dvbp_prelude.Floatx

type bin_decomposition = {
  bin_id : int;
  usage : Interval.t;
  p : Interval.t;
  q : Interval.t;
}

type t = { bins : bin_decomposition list }

let analyse (packing : Packing.t) =
  let bins, _ =
    List.fold_left
      (fun (acc, latest_close) (b : Packing.bin_record) ->
        let iv = b.Packing.interval in
        let t_i = Float.max iv.Interval.lo latest_close in
        let mid = Float.min iv.Interval.hi t_i in
        let decomposition =
          {
            bin_id = b.Packing.bin_id;
            usage = iv;
            p = Interval.make iv.Interval.lo mid;
            q = Interval.make mid iv.Interval.hi;
          }
        in
        (decomposition :: acc, Float.max latest_close iv.Interval.hi))
      ([], neg_infinity) packing.Packing.bins
  in
  { bins = List.rev bins }

let q_total t = Floatx.kahan_sum (List.map (fun b -> Interval.length b.q) t.bins)
let p_total t = Floatx.kahan_sum (List.map (fun b -> Interval.length b.p) t.bins)

let check_claim4 t ~activity =
  let union = Interval_set.of_intervals (List.map (fun b -> b.q) t.bins) in
  Interval_set.approx_equal union activity
  && Floatx.approx_equal (q_total t) (Interval_set.total_length activity)
