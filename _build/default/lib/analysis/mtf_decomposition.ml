module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Trace = Dvbp_engine.Trace
module Floatx = Dvbp_prelude.Floatx

type bin_decomposition = {
  bin_id : int;
  usage : Interval.t;
  leading : Interval_set.t;
  non_leading : Interval_set.t;
  placements : float list;
}

type t = {
  leader_timeline : (Interval.t * int) list;
  bins : bin_decomposition list;
}

let analyse trace =
  (* Replay the trace, maintaining the MRU list (front = leader). *)
  let mru = ref [] in
  let opened : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let closed : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let placements : (int, float list) Hashtbl.t = Hashtbl.create 16 in
  let timeline_rev = ref [] in
  let seg_start = ref 0.0 in
  let current_leader = ref None in
  let switch_leader ~now =
    let leader = match !mru with [] -> None | b :: _ -> Some b in
    if leader <> !current_leader then begin
      (match !current_leader with
      | Some b when now > !seg_start ->
          timeline_rev := (Interval.make !seg_start now, b) :: !timeline_rev
      | Some _ | None -> ());
      current_leader := leader;
      seg_start := now
    end
  in
  List.iter
    (fun event ->
      let now = Trace.time_of event in
      (match event with
      | Trace.Opened { bin_id; _ } ->
          Hashtbl.replace opened bin_id now;
          mru := bin_id :: !mru
      | Trace.Placed { bin_id; _ } ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt placements bin_id) in
          Hashtbl.replace placements bin_id (now :: prev);
          mru := bin_id :: List.filter (fun b -> b <> bin_id) !mru
      | Trace.Departed _ -> ()
      | Trace.Closed { bin_id; _ } ->
          Hashtbl.replace closed bin_id now;
          mru := List.filter (fun b -> b <> bin_id) !mru);
      switch_leader ~now)
    (Trace.events trace);
  let leader_timeline = List.rev !timeline_rev in
  let leading_of bin_id =
    Interval_set.of_intervals
      (List.filter_map
         (fun (iv, b) -> if b = bin_id then Some iv else None)
         leader_timeline)
  in
  let bins =
    Hashtbl.fold
      (fun bin_id open_t acc ->
        let close_t =
          match Hashtbl.find_opt closed bin_id with
          | Some t -> t
          | None -> invalid_arg "Mtf_decomposition: trace has an unclosed bin"
        in
        let usage = Interval.make open_t close_t in
        let leading = leading_of bin_id in
        let non_leading =
          Interval_set.diff (Interval_set.of_intervals [ usage ]) leading
        in
        let bin_placements =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt placements bin_id))
        in
        { bin_id; usage; leading; non_leading; placements = bin_placements } :: acc)
      opened []
    |> List.sort (fun a b -> Int.compare a.bin_id b.bin_id)
  in
  { leader_timeline; bins }

let leading_total t =
  Floatx.kahan_sum (List.map (fun (iv, _) -> Interval.length iv) t.leader_timeline)

let leading_partition_activity t ~activity =
  let union =
    List.fold_left
      (fun acc b -> Interval_set.union acc b.leading)
      Interval_set.empty t.bins
  in
  (* Union equals activity, and segment lengths add up with no overlap. *)
  Interval_set.approx_equal union activity
  && Floatx.approx_equal (leading_total t) (Interval_set.total_length activity)

(* Longest placement-free stretch within a non-leading interval: placements
   inside the interval split it (the paper's zero-length leading periods). *)
let non_leading_max t =
  let stretch_max acc (iv : Interval.t) placements =
    let inside =
      List.filter (fun p -> iv.Interval.lo < p && p < iv.Interval.hi) placements
    in
    let cuts = (iv.Interval.lo :: inside) @ [ iv.Interval.hi ] in
    let rec widest acc = function
      | a :: (b :: _ as rest) -> widest (Float.max acc (b -. a)) rest
      | _ -> acc
    in
    widest acc cuts
  in
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc iv -> stretch_max acc iv b.placements)
        acc
        (Interval_set.intervals b.non_leading))
    0.0 t.bins
