(** Ratio trajectory of a run: how the online cost tracks the (observable)
    lower bound over time.

    At any instant [t], both the cost incurred so far and the Lemma 1 (i)
    lower bound restricted to [\[0, t)] are computable from the past alone,
    so an operator can watch the live ratio as a regret signal. This module
    reconstructs that trajectory from a finished run, sampled at every
    event time. *)

type point = {
  time : float;
  cost_so_far : float;  (** bin-time accumulated in [\[0, time)] *)
  lower_bound_so_far : float;  (** height-integral over [\[0, time)] *)
  open_bins : int;
  active_items : int;
}

val trajectory :
  Dvbp_core.Instance.t -> Dvbp_engine.Trace.t -> point list
(** One point per distinct event time, ascending; the first point is the
    first arrival. The final point's values equal the whole-run cost and
    lower bound. *)

val final_ratio : point list -> float
(** [cost / lower bound] at the last point.
    @raise Invalid_argument on an empty trajectory. *)

val peak_ratio : point list -> float
(** Largest [cost_so_far / lower_bound_so_far] over points with a positive
    lower bound — the worst momentary regret.
    @raise Invalid_argument on an empty trajectory. *)
