(** Leading / non-leading decomposition of a Move To Front run (Figure 1,
    Claims 1–3 of the paper).

    A bin is the {e leader} at time [t] when it sits at the front of the
    most-recently-used list. The proof of Theorem 2 splits each bin's usage
    period into alternating leading intervals [P_{i,j}] and non-leading
    intervals [Q_{i,j}], and rests on the fact that the leading intervals of
    all bins partition the active span (Claim 1). This module reconstructs
    that decomposition from a simulation trace so tests (and Figure 1's
    rendering) can check the claims on real executions. *)

type bin_decomposition = {
  bin_id : int;
  usage : Dvbp_interval.Interval.t;
  leading : Dvbp_interval.Interval_set.t;
  non_leading : Dvbp_interval.Interval_set.t;
  placements : float list;  (** times this bin received an item, ascending *)
}

type t = {
  leader_timeline : (Dvbp_interval.Interval.t * int) list;
      (** who led when, in time order; gaps where no bin is open *)
  bins : bin_decomposition list;
}

val analyse : Dvbp_engine.Trace.t -> t
(** Reconstructs the MRU order by replaying the trace. Meaningful for
    traces produced by the [mtf] policy (any trace is accepted — the
    decomposition then describes the front of the reconstructed MRU list,
    whatever the policy did). *)

val leading_total : t -> float
(** Total length of all leading intervals — Claim 1 says this equals
    [span(R)]. *)

val leading_partition_activity :
  t -> activity:Dvbp_interval.Interval_set.t -> bool
(** Checks Claim 1: the leading intervals are pairwise disjoint and their
    union is exactly the activity set. *)

val non_leading_max : t -> float
(** Longest placement-free stretch of a non-leading interval — the
    [ℓ(Q_{i,j}) <= µ] quantity of Claim 2. (A bin can receive an item and
    lose leadership at the same instant, creating a zero-length leading
    period; the paper's [Q] intervals split there, so stretches are measured
    between placements, not merely between positive-length leaderships.) *)
