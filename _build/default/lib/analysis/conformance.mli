(** Independent conformance checking of executions against policy
    semantics.

    The engine trusts a policy's [select]; this module re-derives, from the
    instance and the trace alone, what each policy {e must} have done at
    every arrival — first fitting bin for First Fit, most-loaded fitting bin
    for Best Fit, most-recently-used for Move To Front, the current bin for
    Next Fit — and reports every divergence. Because it shares no code with
    {!Dvbp_core.Policy}, it is an independent implementation of the §2.2
    definitions: the property tests run both against each other. *)

type semantics =
  | First_fit
  | Last_fit
  | Best_fit of Dvbp_core.Load_measure.t
  | Worst_fit of Dvbp_core.Load_measure.t
  | Move_to_front
  | Next_fit

val semantics_of_name : string -> semantics option
(** ["ff"], ["lf"], ["bf"], ["wf"], ["mtf"], ["nf"] (default measures);
    [None] for policies without replayable semantics (random fit,
    clairvoyant extensions). *)

type violation = {
  time : float;
  item_id : int;
  chosen_bin : int option;  (** [None] when a fresh bin was opened *)
  expected_bin : int option;
  reason : string;
}

val check :
  semantics ->
  Dvbp_core.Instance.t ->
  Dvbp_engine.Trace.t ->
  (unit, violation list) result
(** Replays the trace and verifies every placement decision. *)

val pp_violation : Format.formatter -> violation -> unit
