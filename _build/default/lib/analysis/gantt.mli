(** ASCII Gantt rendering of packings — the textual analogue of the
    paper's Figures 1–3.

    Each bin is one row on a shared time axis; usage is drawn with ['='],
    and an optional per-bin highlight set (e.g. the leading intervals of
    Move To Front) is overdrawn with ['#']. *)

val render :
  ?width:int ->
  ?highlight:(int -> Dvbp_interval.Interval_set.t) ->
  Dvbp_core.Packing.t ->
  string
(** [render packing] draws all bins. [width] is the number of character
    cells for the time axis (default 72). [highlight] maps a bin id to
    intervals to overdraw (default: none). The output ends with a scale
    line. *)
