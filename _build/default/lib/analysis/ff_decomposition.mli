(** The [P_i / Q_i] decomposition of a First Fit packing (Figure 2,
    Claim 4 of the paper).

    Bins are indexed by opening time. With [t_i] the latest closing time of
    bins opened before bin [i], the usage period [I_i] splits into
    [P_i = \[I_i^-, min(I_i^+, t_i))] — the stretch still "shadowed" by an
    earlier bin — and the tail [Q_i]. The [Q_i] are pairwise disjoint and
    cover the activity span exactly (Claim 4: [Σ ℓ(Q_i) = span(R)]). The
    decomposition is a property of any packing whose bins are indexed in
    opening order, so it applies to every policy's output; the Theorem 3
    analysis uses it for First Fit. *)

type bin_decomposition = {
  bin_id : int;
  usage : Dvbp_interval.Interval.t;
  p : Dvbp_interval.Interval.t;  (** possibly empty *)
  q : Dvbp_interval.Interval.t;  (** possibly empty *)
}

type t = { bins : bin_decomposition list }

val analyse : Dvbp_core.Packing.t -> t

val q_total : t -> float
(** [Σ ℓ(Q_i)] — Claim 4 says this equals [span(R)]. *)

val p_total : t -> float

val check_claim4 : t -> activity:Dvbp_interval.Interval_set.t -> bool
(** The [Q_i] are disjoint and their union is exactly the activity set. *)
