lib/analysis/gantt.ml: Buffer Bytes Dvbp_core Dvbp_interval Dvbp_prelude Float Int List Printf String
