lib/analysis/ff_decomposition.ml: Dvbp_core Dvbp_interval Dvbp_prelude Float List
