lib/analysis/mtf_decomposition.mli: Dvbp_engine Dvbp_interval
