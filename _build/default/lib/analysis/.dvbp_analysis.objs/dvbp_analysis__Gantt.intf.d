lib/analysis/gantt.mli: Dvbp_core Dvbp_interval
