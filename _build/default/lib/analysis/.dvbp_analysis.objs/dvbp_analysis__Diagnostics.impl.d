lib/analysis/diagnostics.ml: Dvbp_core Dvbp_interval Dvbp_prelude Dvbp_vec Float Format List
