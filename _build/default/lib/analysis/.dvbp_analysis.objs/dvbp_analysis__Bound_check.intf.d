lib/analysis/bound_check.mli: Dvbp_core Format
