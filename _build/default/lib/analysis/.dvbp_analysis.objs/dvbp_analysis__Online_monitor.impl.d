lib/analysis/online_monitor.ml: Dvbp_core Dvbp_engine Dvbp_interval Dvbp_lowerbound Dvbp_vec Float List
