lib/analysis/conformance.mli: Dvbp_core Dvbp_engine Format
