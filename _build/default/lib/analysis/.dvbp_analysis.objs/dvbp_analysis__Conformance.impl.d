lib/analysis/conformance.ml: Dvbp_core Dvbp_engine Dvbp_prelude Dvbp_vec Format Hashtbl List Option
