lib/analysis/mtf_decomposition.ml: Dvbp_engine Dvbp_interval Dvbp_prelude Float Hashtbl Int List Option
