lib/analysis/diagnostics.mli: Dvbp_core Format
