lib/analysis/ff_decomposition.mli: Dvbp_core Dvbp_interval
