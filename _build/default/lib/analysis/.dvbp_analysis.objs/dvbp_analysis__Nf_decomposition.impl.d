lib/analysis/nf_decomposition.ml: Dvbp_engine Dvbp_interval Dvbp_prelude Float List
