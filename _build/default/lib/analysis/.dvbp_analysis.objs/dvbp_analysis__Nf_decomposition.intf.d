lib/analysis/nf_decomposition.mli: Dvbp_engine Dvbp_interval
