lib/analysis/online_monitor.mli: Dvbp_core Dvbp_engine
