lib/analysis/bound_check.ml: Dvbp_core Format
