module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Packing = Dvbp_core.Packing

let render ?(width = 72) ?(highlight = fun _ -> Interval_set.empty)
    (packing : Packing.t) =
  if width < 2 then invalid_arg "Gantt.render: width too small";
  let t0, t1 =
    List.fold_left
      (fun (lo, hi) (b : Packing.bin_record) ->
        ( Float.min lo b.Packing.interval.Interval.lo,
          Float.max hi b.Packing.interval.Interval.hi ))
      (infinity, neg_infinity) packing.Packing.bins
  in
  if not (Float.is_finite t0 && Float.is_finite t1) then "(empty packing)\n"
  else
    let scale = if t1 > t0 then float_of_int width /. (t1 -. t0) else 0.0 in
    let cell_of time =
      Dvbp_prelude.Floatx.clamp ~lo:0.0 ~hi:(float_of_int (width - 1))
        (Float.floor ((time -. t0) *. scale))
      |> int_of_float
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (b : Packing.bin_record) ->
        let row = Bytes.make width ' ' in
        let paint ch (iv : Interval.t) =
          if not (Interval.is_empty iv) then
            for c = cell_of iv.Interval.lo to cell_of (iv.Interval.hi -. 1e-12) do
              Bytes.set row c ch
            done
        in
        paint '=' b.Packing.interval;
        List.iter (paint '#') (Interval_set.intervals (highlight b.Packing.bin_id));
        Buffer.add_string buf (Printf.sprintf "bin %3d |%s|\n" b.Packing.bin_id (Bytes.to_string row)))
      packing.Packing.bins;
    Buffer.add_string buf
      (Printf.sprintf "        %g%s%g\n" t0 (String.make (Int.max 1 (width - 6)) '-') t1);
    Buffer.contents buf
