module Instance = Dvbp_core.Instance

type verdict = {
  policy : string;
  cost : float;
  opt : float;
  ratio : float;
  bound : float;
  ok : bool;
}

let theoretical_bound ~policy ~mu ~d =
  let d = float_of_int d in
  match policy with
  | "mtf" -> Some ((((2.0 *. mu) +. 1.0) *. d) +. 1.0)
  | "ff" -> Some (((mu +. 2.0) *. d) +. 1.0)
  | "nf" -> Some ((2.0 *. mu *. d) +. 1.0)
  | _ -> None

let check ~policy ~cost ~opt ~instance =
  match
    theoretical_bound ~policy ~mu:(Instance.mu instance) ~d:(Instance.dim instance)
  with
  | None -> None
  | Some bound ->
      let ratio = cost /. opt in
      Some { policy; cost; opt; ratio; bound; ok = ratio <= bound +. 1e-9 }

let pp_verdict ppf v =
  Format.fprintf ppf "%-4s cost=%.4f opt=%.4f ratio=%.4f bound=%.4f %s" v.policy
    v.cost v.opt v.ratio v.bound
    (if v.ok then "OK" else "VIOLATED")
