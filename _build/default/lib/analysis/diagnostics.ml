module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Packing = Dvbp_core.Packing
module Item = Dvbp_core.Item
module Listx = Dvbp_prelude.Listx

type t = {
  packing_efficiency : float;
  departure_spread : float;
  mean_items_per_bin : float;
  singleton_bin_fraction : float;
}

let measure (packing : Packing.t) =
  let bins = packing.Packing.bins in
  if bins = [] then invalid_arg "Diagnostics.measure: empty packing";
  let cap = packing.Packing.capacity in
  let cost = Packing.cost packing in
  let utilisation =
    Listx.sum_by
      (fun (b : Packing.bin_record) ->
        Listx.sum_by
          (fun (r : Item.t) -> Vec.linf ~cap r.Item.size *. Item.duration r)
          b.Packing.items)
      bins
  in
  let spread_of (b : Packing.bin_record) =
    let departures = List.map (fun (r : Item.t) -> r.Item.departure) b.Packing.items in
    let first = List.fold_left Float.min infinity departures in
    let last = List.fold_left Float.max neg_infinity departures in
    let len = Interval.length b.Packing.interval in
    if len > 0.0 then (last -. first) /. len else 0.0
  in
  let nbins = float_of_int (List.length bins) in
  let singletons =
    List.length (List.filter (fun b -> List.length b.Packing.items = 1) bins)
  in
  {
    packing_efficiency = (if cost > 0.0 then utilisation /. cost else 0.0);
    departure_spread = Listx.sum_by spread_of bins /. nbins;
    mean_items_per_bin =
      float_of_int (List.fold_left (fun acc b -> acc + List.length b.Packing.items) 0 bins)
      /. nbins;
    singleton_bin_fraction = float_of_int singletons /. nbins;
  }

let pp ppf t =
  Format.fprintf ppf
    "efficiency=%.3f spread=%.3f items/bin=%.2f singleton=%.3f"
    t.packing_efficiency t.departure_spread t.mean_items_per_bin
    t.singleton_bin_fraction
