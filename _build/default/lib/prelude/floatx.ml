let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= (eps *. scale)

let kahan_sum xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  List.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := (t -. !sum) -. y;
      sum := t)
    xs;
  !sum

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Floatx.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x
