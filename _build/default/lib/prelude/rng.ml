type t = { state : Random.State.t; path : string }

(* A small integer mixer (xorshift-multiply, 63-bit-safe constants)
   decorrelates child seeds that come from sequential keys. *)
let mix64 z =
  let z = z lxor (z lsr 33) in
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 29) in
  let z = z * 0x1B873593 in
  z lxor (z lsr 32)

let create ~seed =
  { state = Random.State.make [| mix64 seed; seed |]; path = string_of_int seed }

let split t ~key =
  (* Derive the child from a hash of (a fresh draw-free fingerprint of the
     parent path, key) so that splitting is independent of how much the
     parent stream has been consumed. *)
  let fingerprint = Hashtbl.hash t.path in
  let child_seed = mix64 ((fingerprint * 0x1000003) lxor key) in
  {
    state = Random.State.make [| child_seed; key; fingerprint |];
    path = t.path ^ "/" ^ string_of_int key;
  }

let int t bound = Random.State.int t.state bound

let int_incl t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_incl: lo > hi";
  lo + Random.State.int t.state (hi - lo + 1)

let float t bound = Random.State.float t.state bound
let bool t = Random.State.bool t.state

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: non-positive mean";
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -.mean *. log u

let normal t ~mean ~sigma =
  if sigma < 0.0 then invalid_arg "Rng.normal: negative sigma";
  let u1 = 1.0 -. Random.State.float t.state 1.0 in
  let u2 = Random.State.float t.state 1.0 in
  mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: non-positive parameter";
  let u = 1.0 -. Random.State.float t.state 1.0 in
  scale /. (u ** (1.0 /. shape))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(Random.State.int t.state (Array.length a))

let seed_path t = t.path
let state t = t.state
