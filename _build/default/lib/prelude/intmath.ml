let ceil_div a b =
  if a < 0 then invalid_arg "Intmath.ceil_div: negative numerator";
  if b <= 0 then invalid_arg "Intmath.ceil_div: non-positive denominator";
  (a + b - 1) / b

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let mul_checked a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then failwith "Intmath: integer overflow" else p

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_checked (a / gcd a b) b)

let pow b e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul_checked acc b) (mul_checked b b) (e asr 1)
    else go acc (mul_checked b b) (e asr 1)
  in
  (* Avoid squaring b one extra time when the remaining exponent is 0/1. *)
  if e = 0 then 1 else if e = 1 then b else go 1 b e

let sum_checked xs =
  List.fold_left
    (fun acc x ->
      let s = acc + x in
      if (x > 0 && s < acc) || (x < 0 && s > acc) then
        failwith "Intmath: integer overflow"
      else s)
    0 xs
