(** List helpers used across the project. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Compensated sum of [f x] over the list. *)

val max_by : ('a -> 'b) -> 'a list -> 'a option
(** Element maximising [f] (first among ties), [None] on empty input. *)

val min_by : ('a -> 'b) -> 'a list -> 'a option
(** Element minimising [f] (first among ties), [None] on empty input. *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; ...; hi\]]; empty when [lo > hi]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them when the list is shorter). *)

val group_consecutive : ('a -> 'a -> bool) -> 'a list -> 'a list list
(** Groups maximal runs of consecutive elements related by the predicate. *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs [(x, y)] with [x] before [y] in the list. *)
