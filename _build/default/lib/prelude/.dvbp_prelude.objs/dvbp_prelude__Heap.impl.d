lib/prelude/heap.ml: Array Int List
