lib/prelude/rng.mli: Random
