lib/prelude/floatx.mli:
