lib/prelude/floatx.ml: Float List
