lib/prelude/heap.mli:
