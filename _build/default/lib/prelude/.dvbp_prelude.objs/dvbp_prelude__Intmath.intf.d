lib/prelude/intmath.mli:
