lib/prelude/listx.ml: Floatx List
