lib/prelude/rng.ml: Array Float Hashtbl Random
