lib/prelude/listx.mli:
