(** Deterministic, splittable randomness.

    Experiments must be reproducible: every randomised component receives a
    [Rng.t] derived from a root seed, and independent streams (one per
    instance, per algorithm, per sweep point) are derived with [split] so
    results do not depend on evaluation order. *)

type t
(** A random stream; a thin wrapper over [Random.State.t] with a recorded
    seed path for diagnostics. *)

val create : seed:int -> t
(** Root stream for a given seed. Equal seeds give equal streams. *)

val split : t -> key:int -> t
(** [split t ~key] derives an independent child stream. Children with
    distinct keys are (statistically) independent; the same [(t, key)] pair
    always yields the same stream. The parent is not consumed. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1]. [bound] must be
    positive. *)

val int_incl : t -> lo:int -> hi:int -> int
(** Uniform integer in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean ([mean > 0]). *)

val normal : t -> mean:float -> sigma:float -> float
(** Gaussian draw (Box–Muller); [sigma >= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto(Type I) draw: support [\[scale, ∞)], tail exponent [shape]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val seed_path : t -> string
(** Human-readable derivation path, e.g. ["42/3/17"] — useful in failure
    messages to replay exactly one instance. *)

val state : t -> Random.State.t
(** Escape hatch to the underlying state (consumed in place). *)
