(** Exact integer arithmetic helpers.

    The packing core works in integer resource units so that every fit
    decision is exact; these helpers keep the integer arithmetic honest
    (ceiling division without float round-trips, overflow-checked scaling,
    gcd/lcm for building exactly-representable adversarial instances). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [⌈a / b⌉] for [a >= 0] and [b > 0].
    @raise Invalid_argument if [a < 0] or [b <= 0]. *)

val gcd : int -> int -> int
(** Greatest common divisor of the absolute values; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple of the absolute values; [lcm 0 _ = 0]. *)

val pow : int -> int -> int
(** [pow b e] is [b{^e}] for [e >= 0] by binary exponentiation.
    @raise Invalid_argument if [e < 0]. *)

val mul_checked : int -> int -> int
(** Multiplication that raises [Failure] on signed overflow. *)

val sum_checked : int list -> int
(** Sum that raises [Failure] on signed overflow. *)
