let sum_by f xs = Floatx.kahan_sum (List.map f xs)

let max_by f = function
  | [] -> None
  | x :: xs ->
      let best, _ =
        List.fold_left
          (fun (bx, bv) y ->
            let v = f y in
            if v > bv then (y, v) else (bx, bv))
          (x, f x) xs
      in
      Some best

let min_by f = function
  | [] -> None
  | x :: xs ->
      let best, _ =
        List.fold_left
          (fun (bx, bv) y ->
            let v = f y in
            if v < bv then (y, v) else (bx, bv))
          (x, f x) xs
      in
      Some best

let range lo hi = if lo > hi then [] else List.init (hi - lo + 1) (fun i -> lo + i)

let take n xs =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let group_consecutive same xs =
  let flush group groups =
    match group with [] -> groups | _ -> List.rev group :: groups
  in
  let rec go group groups = function
    | [] -> List.rev (flush group groups)
    | x :: rest -> (
        match group with
        | y :: _ when same y x -> go (x :: group) groups rest
        | [] -> go [ x ] groups rest
        | _ -> go [ x ] (flush group groups) rest)
  in
  go [] [] xs

let pairs xs =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
        go acc rest
  in
  go [] xs
