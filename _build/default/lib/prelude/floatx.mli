(** Floating-point helpers for time arithmetic.

    Times in the simulator are floats (generators emit exact integers or
    simple dyadic rationals, so event ordering is exact); these helpers cover
    the places where accumulated sums are compared. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal a b] holds when [|a - b| <= eps * max 1 (|a|, |b|)].
    Default [eps] is [1e-9]. *)

val kahan_sum : float list -> float
(** Compensated summation; deterministic and accurate for long series of
    interval lengths. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi]. *)

val is_finite : float -> bool
(** True when the float is neither infinite nor NaN. *)
