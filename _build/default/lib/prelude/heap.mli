(** Array-backed binary min-heap.

    The substrate for schedule-keeping in online drivers: a dispatcher
    feeding {!Dvbp_engine.Session} needs the earliest pending departure in
    [O(log n)]. Polymorphic in the element, ordered by the comparison given
    at creation. Not thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap; smallest element (per [cmp]) pops first. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Heapify in [O(n)]. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [O(log n)] insertion. *)

val peek_min : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop_min : 'a t -> 'a option
(** Removes and returns the smallest element; [None] when empty. Equal
    elements pop in unspecified relative order. *)

val drain : 'a t -> 'a list
(** Pops everything; ascending order. The heap is empty afterwards. *)
