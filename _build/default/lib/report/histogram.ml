let render ?(bins = 10) ?(width = 40) samples =
  if samples = [] then invalid_arg "Histogram.render: empty sample list";
  if bins < 1 then invalid_arg "Histogram.render: bins < 1";
  if width < 1 then invalid_arg "Histogram.render: width < 1";
  let lo = List.fold_left Float.min infinity samples in
  let hi = List.fold_left Float.max neg_infinity samples in
  let span = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. span *. float_of_int bins) in
      let b = Int.min (bins - 1) (Int.max 0 b) in
      counts.(b) <- counts.(b) + 1)
    samples;
  let peak = Array.fold_left Int.max 1 counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let from = lo +. (span *. float_of_int i /. float_of_int bins) in
      let till = lo +. (span *. float_of_int (i + 1) /. float_of_int bins) in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "[%8.4f, %8.4f) %5d |%s\n" from till c bar))
    counts;
  Buffer.contents buf
