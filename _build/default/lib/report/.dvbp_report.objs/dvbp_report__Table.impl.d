lib/report/table.ml: Int List Printf String
