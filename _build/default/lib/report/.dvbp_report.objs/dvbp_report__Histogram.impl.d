lib/report/histogram.ml: Array Buffer Float Int List Printf String
