lib/report/histogram.mli:
