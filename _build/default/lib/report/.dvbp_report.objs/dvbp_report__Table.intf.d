lib/report/table.mli:
