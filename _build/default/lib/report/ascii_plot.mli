(** Multi-series ASCII line plots — the textual rendering of Figure 4.

    Each series is a set of [(x, y)] points drawn with its marker character
    on a shared grid; a legend and axis ranges are printed below. Points
    from different series landing on the same cell show the later series'
    marker ['*'] turning into ['+'] to flag the collision. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Default grid 64×20. Series with no points are listed in the legend but
    draw nothing. @raise Invalid_argument on an empty series list or
    duplicate markers. *)
