let check_arity ~header ~rows =
  let n = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> n then
        invalid_arg
          (Printf.sprintf "Table: row %d has %d fields, header has %d" i
             (List.length row) n))
    rows

let render ~header ~rows =
  check_arity ~header ~rows;
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> Int.max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line cells = String.concat "  " (List.map2 pad widths cells) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line header :: rule :: List.map line rows) @ [ "" ])

let escape_csv field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let to_csv ~header ~rows =
  check_arity ~header ~rows;
  let line cells = String.concat "," (List.map escape_csv cells) in
  String.concat "\n" ((line header :: List.map line rows) @ [ "" ])
