(** Horizontal ASCII histograms for ratio distributions.

    Figure 4 reports mean ± std; a histogram of the per-instance ratios
    shows the shape behind those two numbers (skew, outliers — Random Fit
    and Worst Fit have visibly heavier tails). *)

val render : ?bins:int -> ?width:int -> float list -> string
(** Equal-width bins over the data range (default 10 bins, bars up to 40
    cells). Each line shows the bin's range, count, and a bar scaled to the
    modal bin. @raise Invalid_argument on an empty list or [bins < 1]. *)
