(** Aligned plain-text tables and CSV emission for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a header rule. Every row must have the same
    arity as the header.
    @raise Invalid_argument on ragged input. *)

val to_csv : header:string list -> rows:string list list -> string
(** RFC-4180-ish CSV (fields containing commas, double quotes, or newlines
    are quoted).
    @raise Invalid_argument on ragged input. *)
