type series = { label : string; marker : char; points : (float * float) list }

let render ?(width = 64) ?(height = 20) ?(x_label = "x") ?(y_label = "y") all =
  if all = [] then invalid_arg "Ascii_plot.render: no series";
  if width < 2 || height < 2 then invalid_arg "Ascii_plot.render: grid too small";
  let markers = List.map (fun s -> s.marker) all in
  if List.length (List.sort_uniq Char.compare markers) <> List.length markers then
    invalid_arg "Ascii_plot.render: duplicate markers";
  let points = List.concat_map (fun s -> s.points) all in
  match points with
  | [] ->
      "(no data)\n"
      ^ String.concat "\n" (List.map (fun s -> Printf.sprintf "%c %s" s.marker s.label) all)
      ^ "\n"
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let fold f = List.fold_left f in
      let x0 = fold Float.min infinity xs and x1 = fold Float.max neg_infinity xs in
      let y0 = fold Float.min infinity ys and y1 = fold Float.max neg_infinity ys in
      let xr = if x1 > x0 then x1 -. x0 else 1.0 in
      let yr = if y1 > y0 then y1 -. y0 else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      let plot marker (x, y) =
        let c =
          int_of_float (Float.round ((x -. x0) /. xr *. float_of_int (width - 1)))
        in
        let r =
          height - 1
          - int_of_float (Float.round ((y -. y0) /. yr *. float_of_int (height - 1)))
        in
        grid.(r).(c) <- (if grid.(r).(c) = ' ' then marker else '+')
      in
      List.iter (fun s -> List.iter (plot s.marker) s.points) all;
      let buf = Buffer.create ((width + 4) * (height + 4)) in
      Buffer.add_string buf
        (Printf.sprintf "%s: %.4g .. %.4g   %s: %.4g .. %.4g\n" y_label y0 y1 x_label
           x0 x1);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (String.init width (Array.get row));
          Buffer.add_string buf "|\n")
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_string buf "+\n";
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  %c %s\n" s.marker s.label))
        all;
      Buffer.contents buf
