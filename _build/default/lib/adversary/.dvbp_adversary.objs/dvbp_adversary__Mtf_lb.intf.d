lib/adversary/mtf_lb.mli: Gadget
