lib/adversary/nextfit_lb.ml: Dvbp_core Dvbp_vec Gadget List Printf
