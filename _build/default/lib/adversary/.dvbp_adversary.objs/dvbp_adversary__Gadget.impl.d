lib/adversary/gadget.ml: Dvbp_core Format Option
