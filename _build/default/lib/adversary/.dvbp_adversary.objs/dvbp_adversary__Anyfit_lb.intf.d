lib/adversary/anyfit_lb.mli: Gadget
