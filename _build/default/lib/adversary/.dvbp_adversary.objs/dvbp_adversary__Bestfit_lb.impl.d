lib/adversary/bestfit_lb.ml: Dvbp_core Dvbp_vec Gadget Int List Printf
