lib/adversary/mtf_lb.ml: Dvbp_core Dvbp_vec Gadget List Printf
