lib/adversary/nextfit_lb.mli: Gadget
