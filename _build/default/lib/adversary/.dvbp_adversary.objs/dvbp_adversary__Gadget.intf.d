lib/adversary/gadget.mli: Dvbp_core Format
