lib/adversary/bestfit_lb.mli: Gadget
