(** A lower-bound gadget: an adversarial instance packaged with its
    analysis.

    Each construction in §6 of the paper yields a family of instances,
    indexed by a growth parameter, together with (a) an upper bound on the
    optimal cost — certified by an explicit feasible packing described in the
    proof — and (b) a lower bound on the cost the targeted online algorithm
    incurs. The measured competitive ratio of a run on the gadget can then
    be compared against [cr_lower] and the limiting [cr_limit]. *)

type t = {
  name : string;
  description : string;
  instance : Dvbp_core.Instance.t;
  target : string option;
      (** policy short-name the bound targets; [None] = every {e strict} Any
          Fit policy (one whose open-bin list is all open bins — Next Fit is
          not strict and has its own gadget) *)
  opt_upper : float;  (** analytic upper bound on [OPT] *)
  alg_cost_lower : float;  (** analytic lower bound on the target's cost *)
  cr_limit : float;  (** the theorem's limiting bound as the parameter grows *)
}

val cr_lower : t -> float
(** The ratio this concrete instance certifies:
    [alg_cost_lower / opt_upper]. *)

val pp : Format.formatter -> t -> unit
