(** Theorem 6: a [2µd] lower bound against Next Fit.

    The paper's construction with [ε' = 1/(2dk)] and [ε = ε'/(4d)],
    realised in exact integers with capacity [C = 8d²k]:
    interleaved "big" items (one axis at [C/2 − d], elsewhere [1], active
    [\[0, 1)]) and "glue" items ([4d] everywhere, active [\[0, µ)]). Next
    Fit's single current bin takes one big + one glue, then the next big item
    overflows the hot axis, releasing the bin — which the glue item keeps
    open for the whole [µ] window. It ends with [1 + (k−1)d] bins alive for
    [µ], while OPT packs all glue in one bin and the big items two-per-bin.
    The certified ratio approaches [2µd] as [k] grows. *)

val construct : d:int -> k:int -> mu:float -> Gadget.t
(** @raise Invalid_argument unless [d >= 1], [k >= 2] even, [mu >= 1]. *)
