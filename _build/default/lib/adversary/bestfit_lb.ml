module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance

let construct ~k ~t_end =
  if k < 1 then invalid_arg "Bestfit_lb: k >= 1 required";
  if t_end < (2.0 *. float_of_int k) +. 1.0 then
    invalid_arg "Bestfit_lb: t_end >= 2k + 1 required";
  let c = Int.max k 2 in
  let capacity = Vec.of_list [ c ] in
  let filler = Vec.of_list [ c - 1 ] and pin = Vec.of_list [ 1 ] in
  let phase p =
    let t = 2.0 *. float_of_int p in
    List.init p (fun _ -> (t, t +. 1.0, filler)) @ [ (t, t_end, pin) ]
  in
  let items = List.concat (List.init k phase) in
  let instance = Instance.of_specs_exn ~capacity items in
  let kf = float_of_int k in
  (* Best Fit keeps bin p open on [2p, t_end): Σ_p (t_end − 2p). *)
  let alg_cost_lower = (kf *. t_end) -. (kf *. (kf -. 1.0)) in
  (* OPT: all pins in one bin on [0, t_end); each filler alone for 1. *)
  let opt_upper = t_end +. (kf *. (kf -. 1.0) /. 2.0) in
  {
    Gadget.name = Printf.sprintf "bestfit-lb(k=%d,t_end=%g)" k t_end;
    description =
      "Thm 7 family (reconstruction): fillers plug every bin before each new \
       pin arrives, so Best Fit strands one bin per phase until t_end";
    instance;
    target = Some "bf";
    opt_upper;
    alg_cost_lower;
    cr_limit = infinity;
  }
