(** Theorem 7 (cited from Li–Tang–Cai): Best Fit's competitive ratio is
    unbounded.

    The paper only cites the result; this is a reconstruction exhibiting a
    family whose ratio grows without bound. [k] phases at times
    [0, 2, 4, ...]: phase [p] first sends [p] "filler" items of size [C−1]
    (duration 1) that plug every existing bin — each holds exactly one
    size-1 "pin" item — and then one new pin (size [1]) that lives until
    [t_end]. Nothing fits anywhere, so Best Fit opens a fresh bin for every
    pin and ends with [k] bins alive until [t_end]. OPT stacks all pins in
    one bin ([k <= C]) and pays the fillers one bin-hour each. With
    [t_end ≫ k²] the ratio is ≈ [k·t_end / t_end = k] — unbounded in [k].

    Every strict Any Fit policy behaves identically here (all bins are
    always either exactly full or tied), so the gadget targets [bf] but also
    demonstrates the family's effect on First Fit etc. *)

val construct : k:int -> t_end:float -> Gadget.t
(** @raise Invalid_argument unless [k >= 1] and [t_end >= 2k + 1]. *)
