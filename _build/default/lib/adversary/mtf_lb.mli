(** Theorem 8: a [2µ] lower bound against Move To Front (1-D).

    [4n] items arrive at time 0 into bins of capacity [2n]: alternating
    "half" items (size [n], active [\[0, 1)]) and "crumb" items (size [1],
    active [\[0, µ)]). Because the just-used bin is always at the front,
    every crumb lands next to the preceding half item, so no bin ever holds
    two halves — [2n] bins open, each pinned for [µ] by its crumb. OPT puts
    all [2n] crumbs in one bin and pairs the halves into [n] bins. The
    certified ratio approaches [2µ] as [n] grows.

    (The [(µ+1)d] bound of Theorem 5 also applies to Move To Front; for
    [d >= 2] use {!Anyfit_lb}.) *)

val construct : n:int -> mu:float -> Gadget.t
(** @raise Invalid_argument unless [n >= 1] and [mu >= 1]. *)
