module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance

let construct ~d ~k ~mu =
  if d < 1 then invalid_arg "Nextfit_lb: d >= 1 required";
  if k < 2 || k mod 2 <> 0 then invalid_arg "Nextfit_lb: even k >= 2 required";
  if mu < 1.0 then invalid_arg "Nextfit_lb: mu >= 1 required";
  let c = 8 * d * d * k in
  let capacity = Vec.make ~dim:d c in
  (* Scaled constants: C·ε = 1, C·ε' = 4d. *)
  let big axis = Vec.unit_scaled ~dim:d ~axis ~on_axis:((c / 2) - d) ~off_axis:1 in
  let glue = Vec.make ~dim:d (4 * d) in
  let items =
    List.concat
      (List.init (d * k) (fun m ->
           let axis = m / k in
           [ (0.0, 1.0, big axis); (0.0, mu, glue) ]))
  in
  let instance = Instance.of_specs_exn ~capacity items in
  let bins = 1 + ((k - 1) * d) in
  {
    Gadget.name = Printf.sprintf "nextfit-lb(d=%d,k=%d,mu=%g)" d k mu;
    description =
      "Thm 6 construction: Next Fit strands 1+(k-1)d bins, each kept open \
       for mu by a glue item";
    instance;
    target = Some "nf";
    opt_upper = mu +. (float_of_int k /. 2.0);
    alg_cost_lower = float_of_int bins *. mu;
    cr_limit = 2.0 *. mu *. float_of_int d;
  }
