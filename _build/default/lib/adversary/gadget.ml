type t = {
  name : string;
  description : string;
  instance : Dvbp_core.Instance.t;
  target : string option;
  opt_upper : float;
  alg_cost_lower : float;
  cr_limit : float;
}

let cr_lower t = t.alg_cost_lower /. t.opt_upper

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d, target=%s, opt<=%.3f, alg>=%.3f, certified CR>=%.3f (limit %.3f)"
    t.name
    (Dvbp_core.Instance.size t.instance)
    (Option.value ~default:"any-fit" t.target)
    t.opt_upper t.alg_cost_lower (cr_lower t) t.cr_limit
