module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance

let construct ~d ~k ~mu =
  if d < 1 then invalid_arg "Anyfit_lb: d >= 1 required";
  if k < 1 then invalid_arg "Anyfit_lb: k >= 1 required";
  if mu < 1.0 then invalid_arg "Anyfit_lb: mu >= 1 required";
  let c = 6 * d * d * k in
  let capacity = Vec.make ~dim:d c in
  (* Scaled constants: C·ε = 3, C·ε' = 1. *)
  let big axis = Vec.unit_scaled ~dim:d ~axis ~on_axis:(c - (3 * d)) ~off_axis:3 in
  let small = Vec.make ~dim:d ((3 * d) - 1) in
  let probe = Vec.make ~dim:d 1 in
  let r0 =
    List.concat
      (List.init (d * k) (fun m ->
           let axis = m / k in
           [ (0.0, 1.0, big axis); (0.0, 1.0, small) ]))
  in
  let probe_arrival = 1.0 -. (1.0 /. float_of_int k) in
  let r1 =
    List.init (d * k) (fun _ -> (probe_arrival, probe_arrival +. mu, probe))
  in
  let instance = Instance.of_specs_exn ~capacity (r0 @ r1) in
  let dk = float_of_int (d * k) in
  let bin_lifetime = probe_arrival +. mu in
  {
    Gadget.name = Printf.sprintf "anyfit-lb(d=%d,k=%d,mu=%g)" d k mu;
    description =
      "Thm 5 construction: every Any Fit policy opens d*k bins that a probe \
       item then pins for mu time units";
    instance;
    target = None;
    opt_upper = float_of_int k +. bin_lifetime;
    alg_cost_lower = dk *. bin_lifetime;
    cr_limit = (mu +. 1.0) *. float_of_int d;
  }
