module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance

let construct ~n ~mu =
  if n < 1 then invalid_arg "Mtf_lb: n >= 1 required";
  if mu < 1.0 then invalid_arg "Mtf_lb: mu >= 1 required";
  let capacity = Vec.of_list [ 2 * n ] in
  let half = Vec.of_list [ n ] and crumb = Vec.of_list [ 1 ] in
  let items =
    List.concat
      (List.init (2 * n) (fun _ -> [ (0.0, 1.0, half); (0.0, mu, crumb) ]))
  in
  let instance = Instance.of_specs_exn ~capacity items in
  {
    Gadget.name = Printf.sprintf "mtf-lb(n=%d,mu=%g)" n mu;
    description =
      "Thm 8 construction: Move To Front pairs every half-bin item with a \
       crumb that pins its bin for mu";
    instance;
    target = Some "mtf";
    opt_upper = mu +. float_of_int n;
    alg_cost_lower = 2.0 *. float_of_int n *. mu;
    cr_limit = 2.0 *. mu;
  }
