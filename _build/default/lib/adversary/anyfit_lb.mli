(** Theorem 5: a [(µ+1)d] lower bound against {e every} Any Fit policy.

    The paper's construction with [ε = 1/(2d²k)] and [ε' = ε/3], realised
    in exact integers by scaling the bin capacity to [C = 6d²k]:
    - [dk] "big" items (one axis at [C − 3d], elsewhere [3]) interleaved
      with [dk] "small" items ([3d − 1] everywhere), all active [\[0, 1)];
      any Any Fit run opens [dk] bins, each full to [C − 1] in one axis;
    - [dk] "probe" items ([1] everywhere) arriving at [1 − 1/k] and staying
      for [µ]: each lands in a distinct still-open bin and pins it for the
      whole [µ] window.
    OPT instead isolates the small+probe items in one bin and packs the big
    items [d] to a bin. The certified ratio approaches [(µ+1)d] as [k]
    grows. *)

val construct : d:int -> k:int -> mu:float -> Gadget.t
(** @raise Invalid_argument unless [d >= 1], [k >= 1] and [mu >= 1]. *)
