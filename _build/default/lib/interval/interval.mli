(** Half-open time intervals [\[lo, hi)].

    Item activity periods, bin usage periods, and every decomposition in the
    paper's proofs (leading/non-leading periods of Move To Front, the
    [P_i]/[Q_i] split of First Fit, ...) are half-open intervals: an item
    departing at time [t] has already freed its capacity for an arrival at
    [t] (footnote 1 of the paper). *)

type t = private { lo : float; hi : float }
(** Invariant: [lo <= hi], both finite. [lo = hi] is the empty interval. *)

val make : float -> float -> t
(** [make lo hi] builds [\[lo, hi)].
    @raise Invalid_argument if [lo > hi] or either bound is not finite. *)

val empty_at : float -> t
(** The empty interval anchored at a point (zero length). *)

val length : t -> float
(** [hi - lo]; the paper's [ℓ(I)]. *)

val is_empty : t -> bool

val mem : float -> t -> bool
(** [mem x i] iff [lo <= x < hi]. *)

val overlaps : t -> t -> bool
(** True when the intervals share at least one point (empty intervals
    overlap nothing). *)

val intersect : t -> t -> t option
(** Non-empty intersection, or [None]. *)

val hull : t -> t -> t
(** Smallest interval containing both (gaps included). *)

val abuts_or_overlaps : t -> t -> bool
(** True when the union of the two intervals is a single interval. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Order by [lo], then [hi]. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["[lo, hi)"]. *)

val to_string : t -> string
