lib/interval/interval_set.mli: Format Interval
