lib/interval/interval.ml: Float Format
