lib/interval/interval_set.ml: Dvbp_prelude Format Interval List
