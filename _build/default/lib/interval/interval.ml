type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: non-finite bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let empty_at x = make x x
let length i = i.hi -. i.lo
let is_empty i = i.lo >= i.hi
let mem x i = i.lo <= x && x < i.hi

let overlaps a b = a.lo < b.hi && b.lo < a.hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let abuts_or_overlaps a b =
  if is_empty a || is_empty b then false
  else Float.max a.lo b.lo <= Float.min a.hi b.hi

let equal a b = a.lo = b.lo && a.hi = b.hi
let compare a b =
  match Float.compare a.lo b.lo with 0 -> Float.compare a.hi b.hi | c -> c

let pp ppf i = Format.fprintf ppf "[%g, %g)" i.lo i.hi
let to_string i = Format.asprintf "%a" pp i
