type t = Interval.t list
(* Invariant: sorted by [lo]; pairwise disjoint with strict gaps between
   consecutive intervals; all non-empty. *)

let empty = []

let of_intervals is =
  let is = List.filter (fun i -> not (Interval.is_empty i)) is in
  let is = List.sort Interval.compare is in
  let rec merge acc = function
    | [] -> List.rev acc
    | i :: rest -> (
        match acc with
        | prev :: acc' when Interval.abuts_or_overlaps prev i ->
            merge (Interval.hull prev i :: acc') rest
        | _ -> merge (i :: acc) rest)
  in
  merge [] is

let intervals t = t
let is_empty t = t = []
let total_length t = Dvbp_prelude.Floatx.kahan_sum (List.map Interval.length t)

let hull = function
  | [] -> None
  | first :: _ as t ->
      let last = List.nth t (List.length t - 1) in
      Some (Interval.make first.Interval.lo last.Interval.hi)

let mem x t = List.exists (Interval.mem x) t
let add i t = of_intervals (i :: t)
let union a b = of_intervals (a @ b)

let inter a b =
  let pieces =
    List.concat_map
      (fun ia ->
        List.filter_map (fun ib -> Interval.intersect ia ib) b)
      a
  in
  of_intervals pieces

(* [a \ b]: subtract each interval of b from every piece of a. *)
let diff a b =
  let subtract_one (piece : Interval.t) (cut : Interval.t) : Interval.t list =
    match Interval.intersect piece cut with
    | None -> [ piece ]
    | Some overlap ->
        let left =
          if piece.Interval.lo < overlap.Interval.lo then
            [ Interval.make piece.Interval.lo overlap.Interval.lo ]
          else []
        in
        let right =
          if overlap.Interval.hi < piece.Interval.hi then
            [ Interval.make overlap.Interval.hi piece.Interval.hi ]
          else []
        in
        left @ right
  in
  let pieces =
    List.fold_left
      (fun pieces cut -> List.concat_map (fun p -> subtract_one p cut) pieces)
      a b
  in
  of_intervals pieces

let covers t i =
  Interval.is_empty i
  || List.exists
       (fun (piece : Interval.t) ->
         piece.Interval.lo <= i.Interval.lo && i.Interval.hi <= piece.Interval.hi)
       t

let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

let approx_equal ?(eps = 1e-9) a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Interval.t) (y : Interval.t) ->
         Dvbp_prelude.Floatx.approx_equal ~eps x.Interval.lo y.Interval.lo
         && Dvbp_prelude.Floatx.approx_equal ~eps x.Interval.hi y.Interval.hi)
       a b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∪ ") Interval.pp)
    t
