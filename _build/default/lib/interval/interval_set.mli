(** Finite unions of half-open intervals, kept in canonical form.

    Canonical form: sorted, pairwise-disjoint, non-adjacent, non-empty
    intervals. This is the data structure behind the paper's [span(·)]
    (total length of time at least one item is active) and behind checks
    such as "the leading intervals partition [\[0, span))" (Claim 1). *)

type t
(** Immutable canonical union of intervals. *)

val empty : t
val of_intervals : Interval.t list -> t
(** Canonicalises an arbitrary collection (empty intervals dropped,
    overlapping/adjacent intervals merged). *)

val intervals : t -> Interval.t list
(** The canonical intervals, sorted by start. *)

val is_empty : t -> bool

val total_length : t -> float
(** Sum of lengths — [span(R)] when applied to activity intervals of [R]. *)

val hull : t -> Interval.t option
(** Smallest single interval covering the set. *)

val mem : float -> t -> bool

val add : Interval.t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** Set difference [a \ b]. *)

val covers : t -> Interval.t -> bool
(** True when the interval is fully contained in the set. *)

val equal : t -> t -> bool
(** Exact structural equality of canonical forms. *)

val approx_equal : ?eps:float -> t -> t -> bool
(** Equality up to [eps] on every endpoint (canonical forms must have the
    same number of intervals). *)

val pp : Format.formatter -> t -> unit
