module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval

type t = { id : int; arrival : float; departure : float; size : Vec.t }

let make ~id ~arrival ~departure ~size =
  if id < 0 then invalid_arg "Item.make: negative id";
  if not (Float.is_finite arrival && Float.is_finite departure) then
    invalid_arg "Item.make: non-finite time";
  if arrival < 0.0 then invalid_arg "Item.make: negative arrival";
  if departure <= arrival then invalid_arg "Item.make: departure <= arrival";
  { id; arrival; departure; size }

let duration r = r.departure -. r.arrival
let interval r = Interval.make r.arrival r.departure
let active_at r t = r.arrival <= t && t < r.departure
let dim r = Vec.dim r.size
let equal a b = a.id = b.id

let compare_by_arrival a b =
  match Float.compare a.arrival b.arrival with
  | 0 -> Int.compare a.id b.id
  | c -> c

let pp ppf r =
  Format.fprintf ppf "item#%d@[%g,%g)%a" r.id r.arrival r.departure Vec.pp r.size
