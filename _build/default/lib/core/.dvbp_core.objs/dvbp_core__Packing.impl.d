lib/core/packing.ml: Array Buffer Dvbp_interval Dvbp_prelude Dvbp_vec Float Format Instance Int Item List Map Printf
