lib/core/policy.mli: Bin Dvbp_prelude Dvbp_vec Load_measure
