lib/core/load_measure.mli: Dvbp_vec
