lib/core/packing.mli: Dvbp_interval Dvbp_vec Format Instance Int Item Map
