lib/core/bin.mli: Dvbp_interval Dvbp_vec Format Item Load_measure
