lib/core/item.mli: Dvbp_interval Dvbp_vec Format
