lib/core/item.ml: Dvbp_interval Dvbp_vec Float Format Int
