lib/core/bin.ml: Dvbp_interval Dvbp_vec Format Item List Load_measure Printf
