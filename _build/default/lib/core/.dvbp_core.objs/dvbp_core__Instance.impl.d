lib/core/instance.ml: Dvbp_interval Dvbp_prelude Dvbp_vec Float Format Int Item List Printf Set
