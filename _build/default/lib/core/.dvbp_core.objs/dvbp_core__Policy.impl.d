lib/core/policy.ml: Array Bin Dvbp_prelude Dvbp_vec Float Hashtbl Int Item List Load_measure Option Printf String
