lib/core/load_measure.ml: Dvbp_vec Printf String
