lib/core/instance.mli: Dvbp_interval Dvbp_vec Format Item
