module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval

type t = {
  id : int;
  capacity : Vec.t;
  opened_at : float;
  mutable load : Vec.t;
  mutable active_items : Item.t list;
  mutable placed : Item.t list;
  mutable closed_at : float option;
  mutable last_used : int;
}

let create ~id ~capacity ~now ~touch =
  {
    id;
    capacity;
    opened_at = now;
    load = Vec.zero ~dim:(Vec.dim capacity);
    active_items = [];
    placed = [];
    closed_at = None;
    last_used = touch;
  }

let fits t size = Vec.fits ~cap:t.capacity ~load:t.load size
let is_open t = t.closed_at = None
let is_empty t = t.active_items = []

let place t (r : Item.t) ~touch =
  if not (is_open t) then invalid_arg "Bin.place: bin is closed";
  if not (fits t r.Item.size) then
    invalid_arg
      (Printf.sprintf "Bin.place: item %d does not fit in bin %d" r.Item.id t.id);
  t.load <- Vec.add t.load r.Item.size;
  t.active_items <- r :: t.active_items;
  t.placed <- r :: t.placed;
  t.last_used <- touch

let remove t (r : Item.t) =
  if not (List.exists (Item.equal r) t.active_items) then
    invalid_arg
      (Printf.sprintf "Bin.remove: item %d is not active in bin %d" r.Item.id t.id);
  t.active_items <- List.filter (fun x -> not (Item.equal x r)) t.active_items;
  t.load <- Vec.sub t.load r.Item.size

let close t ~now =
  if not (is_open t) then invalid_arg "Bin.close: already closed";
  if not (is_empty t) then invalid_arg "Bin.close: bin still has active items";
  t.closed_at <- Some now

let usage_interval t =
  match t.closed_at with
  | None -> invalid_arg "Bin.usage_interval: bin still open"
  | Some hi -> Interval.make t.opened_at hi

let load_measure m t = Load_measure.apply m ~cap:t.capacity t.load

let pp ppf t =
  Format.fprintf ppf "bin#%d load=%a items=[%a] opened=%g%a" t.id Vec.pp t.load
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (r : Item.t) -> Format.fprintf ppf "%d" r.Item.id))
    t.active_items t.opened_at
    (fun ppf -> function
      | None -> Format.fprintf ppf " (open)"
      | Some c -> Format.fprintf ppf " closed=%g" c)
    t.closed_at
