(** A problem instance: the item list [R] plus the common bin capacity.

    Items are kept in arrival-sequence order (ties in arrival time broken by
    sequence position); this order is part of the instance because Any Fit
    executions depend on it. Construction validates the paper's feasibility
    assumptions: every item must fit in an empty bin ([s(r) ∈ \[0,1\]^d]
    after normalisation) and all dimensions must agree. *)

type t = private {
  capacity : Dvbp_vec.Vec.t;
  items : Item.t list;  (** sorted by [(arrival, id)]; ids are [0..n-1] *)
}

val make : capacity:Dvbp_vec.Vec.t -> Item.t list -> (t, string) result
(** Validates and canonicalises (sorts by arrival order). Errors:
    empty item list, dimension mismatch, an item larger than the capacity in
    some dimension, duplicate ids. *)

val make_exn : capacity:Dvbp_vec.Vec.t -> Item.t list -> t
(** @raise Invalid_argument on the same conditions. *)

val of_specs :
  capacity:Dvbp_vec.Vec.t ->
  (float * float * Dvbp_vec.Vec.t) list ->
  (t, string) result
(** Builds items from [(arrival, departure, size)] triples; ids are assigned
    from list position, so same-instant arrivals keep list order. *)

val of_specs_exn :
  capacity:Dvbp_vec.Vec.t -> (float * float * Dvbp_vec.Vec.t) list -> t

(** {1 Instance quantities from the paper} *)

val dim : t -> int
val size : t -> int
(** Number of items [n]. *)

val mu : t -> float
(** The ratio [µ] of the longest to the shortest item duration ([>= 1]). *)

val min_duration : t -> float
val max_duration : t -> float

val span : t -> float
(** [span(R)]: total length of time at least one item is active. *)

val activity : t -> Dvbp_interval.Interval_set.t
(** The union of all item activity intervals (may have gaps; the paper
    treats each gap-free component as a sub-problem, the engine handles the
    general case directly). *)

val total_utilisation : t -> float
(** [Σ_r ‖s(r)‖∞ · ℓ(I(r))] with capacity-normalised [‖·‖∞] — the
    time-space utilisation of Lemma 1 (ii) before dividing by [d]. *)

val horizon : t -> float
(** Latest departure time. *)

val find : t -> int -> Item.t
(** Item by id. @raise Not_found. *)

(** {1 Transforms}

    Structure-preserving rewrites. They keep ids and arrival order, so a
    deterministic policy behaves identically on the transformed instance —
    the metamorphic laws the property tests exercise. *)

val shift : t -> by:float -> t
(** Translates every arrival and departure by [by] (resulting arrivals must
    stay non-negative).
    @raise Invalid_argument otherwise. *)

val scale_sizes : t -> factor:int -> t
(** Multiplies every item size {e and} the capacity by [factor > 0] —
    packing decisions are invariant under this. *)

val scale_time : t -> factor:float -> t
(** Multiplies every arrival and departure by [factor > 0]; costs scale by
    the same factor. *)

val merge : t list -> (t, string) result
(** Disjoint union of instances over a common capacity: items are re-id'd
    in global arrival order. Errors on an empty list or mismatched
    capacities. *)

val pp : Format.formatter -> t -> unit
(** Compact multi-line rendering for debugging. *)
