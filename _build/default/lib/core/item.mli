(** Items (jobs) of the MinUsageTime DVBP problem.

    An item [r] is the paper's tuple [(a(r), e(r), s(r))]: arrival time,
    departure time and a [d]-dimensional size. The [id] is the position in
    the arrival sequence — ties in arrival time are broken by [id], which is
    how the paper's adversarial constructions order same-instant arrivals. *)

type t = private {
  id : int;  (** position in the arrival sequence; unique per instance *)
  arrival : float;
  departure : float;
  size : Dvbp_vec.Vec.t;
}

val make : id:int -> arrival:float -> departure:float -> size:Dvbp_vec.Vec.t -> t
(** @raise Invalid_argument when [arrival < 0], [departure <= arrival],
    either time is non-finite, or [id < 0]. Durations must be strictly
    positive: the paper's cost model has no zero-length items. *)

val duration : t -> float
(** [e(r) - a(r)], the paper's [ℓ(I(r))]. *)

val interval : t -> Dvbp_interval.Interval.t
(** The half-open active interval [I(r) = \[a(r), e(r))]. *)

val active_at : t -> float -> bool
(** [active_at r t] iff [t ∈ \[a(r), e(r))]. *)

val dim : t -> int

val equal : t -> t -> bool
val compare_by_arrival : t -> t -> int
(** Orders by [(arrival, id)] — the processing order of the simulator. *)

val pp : Format.formatter -> t -> unit
