module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Interval_set = Dvbp_interval.Interval_set
module Listx = Dvbp_prelude.Listx

type t = { capacity : Vec.t; items : Item.t list }

let validate ~capacity items =
  if items = [] then Error "Instance: empty item list"
  else
    let d = Vec.dim capacity in
    let module Iset = Set.Make (Int) in
    let rec check seen = function
      | [] -> Ok ()
      | (r : Item.t) :: rest ->
          if Item.dim r <> d then
            Error
              (Printf.sprintf "Instance: item %d has dimension %d, capacity has %d"
                 r.Item.id (Item.dim r) d)
          else if not (Vec.le r.Item.size capacity) then
            Error
              (Printf.sprintf "Instance: item %d exceeds bin capacity: %s > %s"
                 r.Item.id (Vec.to_string r.Item.size) (Vec.to_string capacity))
          else if Iset.mem r.Item.id seen then
            Error (Printf.sprintf "Instance: duplicate item id %d" r.Item.id)
          else check (Iset.add r.Item.id seen) rest
    in
    check Iset.empty items

let make ~capacity items =
  match validate ~capacity items with
  | Error _ as e -> e
  | Ok () ->
      let items = List.stable_sort Item.compare_by_arrival items in
      Ok { capacity; items }

let make_exn ~capacity items =
  match make ~capacity items with Ok t -> t | Error msg -> invalid_arg msg

let of_specs ~capacity specs =
  let items =
    List.mapi
      (fun id (arrival, departure, size) -> Item.make ~id ~arrival ~departure ~size)
      specs
  in
  make ~capacity items

let of_specs_exn ~capacity specs =
  match of_specs ~capacity specs with Ok t -> t | Error msg -> invalid_arg msg

let dim t = Vec.dim t.capacity
let size t = List.length t.items

let min_duration t =
  List.fold_left (fun acc r -> Float.min acc (Item.duration r)) infinity t.items

let max_duration t =
  List.fold_left (fun acc r -> Float.max acc (Item.duration r)) 0.0 t.items

let mu t = max_duration t /. min_duration t

let activity t = Interval_set.of_intervals (List.map Item.interval t.items)
let span t = Interval_set.total_length (activity t)

let total_utilisation t =
  Listx.sum_by
    (fun (r : Item.t) -> Vec.linf ~cap:t.capacity r.Item.size *. Item.duration r)
    t.items

let horizon t =
  List.fold_left (fun acc (r : Item.t) -> Float.max acc r.Item.departure) 0.0 t.items

let find t id = List.find (fun (r : Item.t) -> r.Item.id = id) t.items

let map_items t f =
  { t with items = List.map f t.items }

let shift t ~by =
  map_items t (fun (r : Item.t) ->
      Item.make ~id:r.Item.id ~arrival:(r.Item.arrival +. by)
        ~departure:(r.Item.departure +. by) ~size:r.Item.size)

let scale_sizes t ~factor =
  if factor <= 0 then invalid_arg "Instance.scale_sizes: non-positive factor";
  {
    capacity = Vec.scale factor t.capacity;
    items =
      List.map
        (fun (r : Item.t) ->
          Item.make ~id:r.Item.id ~arrival:r.Item.arrival ~departure:r.Item.departure
            ~size:(Vec.scale factor r.Item.size))
        t.items;
  }

let scale_time t ~factor =
  if factor <= 0.0 then invalid_arg "Instance.scale_time: non-positive factor";
  map_items t (fun (r : Item.t) ->
      Item.make ~id:r.Item.id ~arrival:(r.Item.arrival *. factor)
        ~departure:(r.Item.departure *. factor) ~size:r.Item.size)

let merge = function
  | [] -> Error "Instance.merge: empty list"
  | first :: _ as instances ->
      let capacity = first.capacity in
      if
        List.exists
          (fun i -> not (Vec.equal i.capacity capacity))
          instances
      then Error "Instance.merge: capacity mismatch"
      else
        let all =
          List.concat_map (fun i -> i.items) instances
          |> List.stable_sort Item.compare_by_arrival
        in
        let items =
          List.mapi
            (fun id (r : Item.t) ->
              Item.make ~id ~arrival:r.Item.arrival ~departure:r.Item.departure
                ~size:r.Item.size)
            all
        in
        make ~capacity items

let pp ppf t =
  Format.fprintf ppf "@[<v>instance cap=%a n=%d@,%a@]" Vec.pp t.capacity (size t)
    (Format.pp_print_list Item.pp)
    t.items
