(** Arrival-time processes shared by the workload generators.

    Every generator needs a stream of arrival instants; this module factors
    the three processes used across the suite so they are implemented (and
    tested) once:
    - uniform integer arrivals on a grid (the paper's Table 2 model),
    - homogeneous Poisson (cloud-gaming sessions),
    - inhomogeneous Poisson via Lewis–Shedler thinning (diurnal VM load). *)

type t =
  | Uniform_grid of { lo : int; hi : int }
      (** independent integer instants, uniform on [\[lo, hi\]] (not
          ordered) *)
  | Poisson of { rate : float }
      (** ordered instants with exponential inter-arrival times *)
  | Modulated_poisson of {
      base_rate : float;
      amplitude : float;  (** in [\[0, 1)] *)
      period : float;
    }
      (** ordered instants from rate
          [base·(1 + amplitude·sin(2πt/period))], exact via thinning *)

val validate : t -> (unit, string) result

val generate : t -> n:int -> rng:Dvbp_prelude.Rng.t -> float list
(** [n] arrival instants; ordered for the Poisson variants, i.i.d. for the
    grid. @raise Invalid_argument when {!validate} fails or [n < 0]. *)
