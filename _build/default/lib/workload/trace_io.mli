(** CSV serialisation of problem instances.

    The format is a substitution for proprietary cloud traces (DESIGN.md §3):
    external request logs can be converted to it offline and replayed through
    the simulator. Layout (comma-separated, ['#'] comments ignored):

    {v
    # dvbp-trace v1
    capacity,100,100
    item,0,0.0,5.0,30,20
    item,1,2.5,7.0,10,80
    v}

    Each [item] row is [id, arrival, departure, size_1, ..., size_d].
    Reads are fully validated (dimension checks, duplicate ids, malformed
    numbers) and report the offending line. *)

val to_string : Dvbp_core.Instance.t -> string
val of_string : string -> (Dvbp_core.Instance.t, string) result

val write_file : string -> Dvbp_core.Instance.t -> unit
(** @raise Sys_error on IO failure. *)

val read_file : string -> (Dvbp_core.Instance.t, string) result
