module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng
module Floatx = Dvbp_prelude.Floatx

let dimension_names = [ "vcpu"; "memory_gb"; "disk_gb"; "network_gbps" ]

type flavour = { label : string; demand : int array; weight : float }

let default_flavours =
  [
    { label = "small"; demand = [| 2; 4; 50; 1 |]; weight = 0.40 };
    { label = "medium"; demand = [| 4; 16; 100; 2 |]; weight = 0.30 };
    { label = "large"; demand = [| 8; 32; 250; 5 |]; weight = 0.15 };
    { label = "xlarge"; demand = [| 16; 64; 500; 10 |]; weight = 0.10 };
    { label = "io-heavy"; demand = [| 4; 8; 1000; 12 |]; weight = 0.05 };
  ]

let default_server = [| 64; 256; 2000; 25 |]

type params = {
  n : int;
  flavours : flavour list;
  server : int array;
  mean_lifetime : float;
  pareto_shape : float;
  max_lifetime : float;
  base_rate : float;
  diurnal_amplitude : float;
  diurnal_period : float;
}

let default =
  {
    n = 500;
    flavours = default_flavours;
    server = default_server;
    mean_lifetime = 12.0;
    pareto_shape = 1.5;
    max_lifetime = 240.0;
    base_rate = 10.0;
    diurnal_amplitude = 0.6;
    diurnal_period = 24.0;
  }

let validate p =
  let d = List.length dimension_names in
  if p.n <= 0 then Error "Vm_requests: n must be positive"
  else if p.flavours = [] then Error "Vm_requests: empty flavour catalogue"
  else if Array.length p.server <> d then Error "Vm_requests: server must have 4 dimensions"
  else if Array.exists (fun c -> c <= 0) p.server then
    Error "Vm_requests: server capacities must be positive"
  else if
    List.exists
      (fun f ->
        Array.length f.demand <> d
        || Array.exists2 (fun x c -> x <= 0 || x > c) f.demand p.server
        || f.weight <= 0.0)
      p.flavours
  then Error "Vm_requests: flavour demand out of range or bad weight"
  else if p.mean_lifetime <= 0.0 || p.max_lifetime < 1.0 then
    Error "Vm_requests: lifetimes must be positive (max >= 1)"
  else if p.pareto_shape <= 1.0 then Error "Vm_requests: pareto_shape must exceed 1"
  else if p.base_rate <= 0.0 then Error "Vm_requests: base_rate must be positive"
  else if p.diurnal_amplitude < 0.0 || p.diurnal_amplitude >= 1.0 then
    Error "Vm_requests: diurnal_amplitude must lie in [0, 1)"
  else if p.diurnal_period <= 0.0 then Error "Vm_requests: diurnal_period must be positive"
  else Ok ()

let pick_flavour flavours ~rng =
  let total = List.fold_left (fun acc f -> acc +. f.weight) 0.0 flavours in
  let x = Rng.float rng total in
  let rec go acc = function
    | [ f ] -> f
    | f :: rest -> if x < acc +. f.weight then f else go (acc +. f.weight) rest
    | [] -> assert false
  in
  go 0.0 flavours

(* Pareto(shape a, scale s) has mean s·a/(a−1); pick s for the target mean. *)
let pareto_scale p = p.mean_lifetime *. (p.pareto_shape -. 1.0) /. p.pareto_shape

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let capacity = Vec.of_array p.server in
  let scale = pareto_scale p in
  let arrivals =
    Arrival_process.generate
      (Arrival_process.Modulated_poisson
         {
           base_rate = p.base_rate;
           amplitude = p.diurnal_amplitude;
           period = p.diurnal_period;
         })
      ~n:p.n ~rng
  in
  let specs =
    List.map
      (fun arrival ->
        let lifetime =
          Floatx.clamp ~lo:1.0 ~hi:p.max_lifetime
            (Rng.pareto rng ~shape:p.pareto_shape ~scale)
        in
        let flavour = pick_flavour p.flavours ~rng in
        (arrival, arrival +. lifetime, Vec.of_array flavour.demand))
      arrivals
  in
  Instance.of_specs_exn ~capacity specs
