(** Flash-crowd workload: a quiet baseline punctuated by arrival bursts.

    Cloud gaming sees exactly this shape (evening peaks, launch-day
    spikes). A baseline Poisson stream is overlaid with burst episodes;
    during a burst, a clump of items lands within a short window. Bursts
    stress {e alignment}: items arriving together depart together, so
    policies that co-locate them (Move To Front, Next Fit) should shine —
    this generator exists to test that §7 intuition. Sizes and durations
    follow the Table 2 uniform model. *)

type params = {
  base : Uniform_model.params;  (** sizes/durations/bin size; [n] is the
                                    {e baseline} item count *)
  bursts : int;  (** number of burst episodes spread over the span *)
  burst_size : int;  (** items per burst *)
  burst_width : float;  (** window (time units) a burst's arrivals land in *)
}

val default : params
(** 600 baseline items, 8 bursts of 50 items within windows of 2. *)

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
