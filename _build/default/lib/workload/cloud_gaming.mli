(** Cloud-gaming workload (the paper's §1 motivating application).

    Game sessions are dispatched to rented gaming servers. Each session has
    a three-dimensional demand — GPU share, bandwidth, memory — drawn from a
    quality preset (720p / 1080p / 4K), a heavy-ish-tailed play duration
    (exponential, truncated to [\[1, max\]]), and Poisson arrivals. The
    paper uses only the uniform model of Table 2; this generator exercises
    the same code paths on the scenario the introduction motivates, and is
    documented in DESIGN.md as an extension. *)

val dimension_names : string list
(** [\["gpu"; "bandwidth"; "memory"\]]. *)

type preset = {
  label : string;
  demand : int array;  (** per-dimension demand, percent of a server *)
  weight : float;  (** relative popularity *)
}

val default_presets : preset list
(** 720p / 1080p / 4K with demands around 20–60% of a server. *)

type params = {
  n : int;  (** number of sessions *)
  presets : preset list;
  mean_session : float;  (** mean session length (minutes) *)
  max_session : float;  (** truncation point; also bounds µ *)
  arrival_rate : float;  (** sessions per minute *)
  server_capacity : int;  (** capacity per dimension (100 = one server) *)
}

val default : params

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
