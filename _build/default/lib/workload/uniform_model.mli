(** The paper's synthetic workload (§7, Table 2).

    Bins have size [B{^d}]; each item draws, independently and uniformly:
    - a size in [{1, ..., B}{^d}],
    - an integral duration in [\[1, µ\]],
    - an integral arrival time in [\[0, T − µ\]]
    so that every item departs by time [T]. Defaults are Table 2's values
    ([n = 1000], [T = 1000], [B = 100]). *)

type params = {
  d : int;  (** number of resource dimensions *)
  n : int;  (** number of items *)
  mu : int;  (** maximum item duration (minimum is 1) *)
  span : int;  (** the horizon [T] *)
  bin_size : int;  (** capacity [B] in every dimension *)
}

val default : params
(** Table 2 defaults with [d = 1], [mu = 10]. *)

val table2 : d:int -> mu:int -> params
(** Table 2 defaults with the given sweep coordinates. *)

val validate : params -> (unit, string) result
(** All fields positive and [mu <= span]. *)

val capacity : params -> Dvbp_vec.Vec.t

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** One random instance. Deterministic in the rng state.
    @raise Invalid_argument when {!validate} fails. *)
