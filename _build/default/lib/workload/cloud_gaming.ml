module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng
module Floatx = Dvbp_prelude.Floatx

let dimension_names = [ "gpu"; "bandwidth"; "memory" ]

type preset = { label : string; demand : int array; weight : float }

let default_presets =
  [
    { label = "720p"; demand = [| 20; 15; 10 |]; weight = 0.5 };
    { label = "1080p"; demand = [| 35; 25; 20 |]; weight = 0.35 };
    { label = "4k"; demand = [| 60; 50; 35 |]; weight = 0.15 };
  ]

type params = {
  n : int;
  presets : preset list;
  mean_session : float;
  max_session : float;
  arrival_rate : float;
  server_capacity : int;
}

let default =
  {
    n = 500;
    presets = default_presets;
    mean_session = 30.0;
    max_session = 180.0;
    arrival_rate = 2.0;
    server_capacity = 100;
  }

let validate p =
  if p.n <= 0 then Error "Cloud_gaming: n must be positive"
  else if p.presets = [] then Error "Cloud_gaming: empty preset list"
  else if List.exists (fun pr -> pr.weight <= 0.0) p.presets then
    Error "Cloud_gaming: preset weights must be positive"
  else if
    List.exists
      (fun pr ->
        Array.length pr.demand <> List.length dimension_names
        || Array.exists (fun x -> x <= 0 || x > p.server_capacity) pr.demand)
      p.presets
  then Error "Cloud_gaming: preset demand out of range"
  else if p.mean_session <= 0.0 || p.max_session < 1.0 then
    Error "Cloud_gaming: session lengths must be positive (max >= 1)"
  else if p.arrival_rate <= 0.0 then Error "Cloud_gaming: arrival_rate must be positive"
  else if p.server_capacity <= 0 then Error "Cloud_gaming: capacity must be positive"
  else Ok ()

(* Weighted preset choice by inverse CDF over the weight prefix sums. *)
let pick_preset presets ~rng =
  let total = List.fold_left (fun acc pr -> acc +. pr.weight) 0.0 presets in
  let x = Rng.float rng total in
  let rec go acc = function
    | [ pr ] -> pr
    | pr :: rest -> if x < acc +. pr.weight then pr else go (acc +. pr.weight) rest
    | [] -> assert false
  in
  go 0.0 presets

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let capacity = Vec.make ~dim:(List.length dimension_names) p.server_capacity in
  let arrivals =
    Arrival_process.generate
      (Arrival_process.Poisson { rate = p.arrival_rate })
      ~n:p.n ~rng
  in
  let specs =
    List.map
      (fun arrival ->
        let duration =
          Floatx.clamp ~lo:1.0 ~hi:p.max_session (Rng.exponential rng ~mean:p.mean_session)
        in
        let preset = pick_preset p.presets ~rng in
        (arrival, arrival +. duration, Vec.of_array preset.demand))
      arrivals
  in
  Instance.of_specs_exn ~capacity specs
