module Rng = Dvbp_prelude.Rng

type t =
  | Uniform_grid of { lo : int; hi : int }
  | Poisson of { rate : float }
  | Modulated_poisson of { base_rate : float; amplitude : float; period : float }

let validate = function
  | Uniform_grid { lo; hi } ->
      if lo > hi then Error "Arrival_process: empty grid range" else Ok ()
  | Poisson { rate } ->
      if rate <= 0.0 then Error "Arrival_process: rate must be positive" else Ok ()
  | Modulated_poisson { base_rate; amplitude; period } ->
      if base_rate <= 0.0 then Error "Arrival_process: base_rate must be positive"
      else if amplitude < 0.0 || amplitude >= 1.0 then
        Error "Arrival_process: amplitude must lie in [0, 1)"
      else if period <= 0.0 then Error "Arrival_process: period must be positive"
      else Ok ()

let modulated_rate ~base_rate ~amplitude ~period t =
  base_rate *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period)))

(* Lewis–Shedler: candidates at the peak rate, kept with probability
   rate(t)/rate_max, give an exact inhomogeneous Poisson process. *)
let next_modulated ~base_rate ~amplitude ~period ~rng clock =
  let rate_max = base_rate *. (1.0 +. amplitude) in
  let rec go t =
    let t = t +. Rng.exponential rng ~mean:(1.0 /. rate_max) in
    if Rng.float rng 1.0 <= modulated_rate ~base_rate ~amplitude ~period t /. rate_max
    then t
    else go t
  in
  go clock

let generate process ~n ~rng =
  (match validate process with Ok () -> () | Error e -> invalid_arg e);
  if n < 0 then invalid_arg "Arrival_process.generate: negative n";
  match process with
  | Uniform_grid { lo; hi } ->
      List.init n (fun _ -> float_of_int (Rng.int_incl rng ~lo ~hi))
  | Poisson { rate } ->
      let clock = ref 0.0 in
      List.init n (fun _ ->
          clock := !clock +. Rng.exponential rng ~mean:(1.0 /. rate);
          !clock)
  | Modulated_poisson { base_rate; amplitude; period } ->
      let clock = ref 0.0 in
      List.init n (fun _ ->
          clock := next_modulated ~base_rate ~amplitude ~period ~rng !clock;
          !clock)
