lib/workload/correlated.mli: Dvbp_core Dvbp_prelude Uniform_model
