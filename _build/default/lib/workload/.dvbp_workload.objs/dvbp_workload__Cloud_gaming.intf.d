lib/workload/cloud_gaming.mli: Dvbp_core Dvbp_prelude
