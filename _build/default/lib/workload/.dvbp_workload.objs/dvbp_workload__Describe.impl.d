lib/workload/describe.ml: Dvbp_core Dvbp_prelude Dvbp_report Dvbp_vec Float Fun Int List Printf
