lib/workload/describe.mli: Dvbp_core
