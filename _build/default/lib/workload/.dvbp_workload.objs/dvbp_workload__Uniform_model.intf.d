lib/workload/uniform_model.mli: Dvbp_core Dvbp_prelude Dvbp_vec
