lib/workload/uniform_model.ml: Array Dvbp_core Dvbp_prelude Dvbp_vec List
