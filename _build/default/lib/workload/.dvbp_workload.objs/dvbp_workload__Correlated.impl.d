lib/workload/correlated.ml: Array Dvbp_core Dvbp_prelude Dvbp_vec Int List Uniform_model
