lib/workload/trace_io.mli: Dvbp_core
