lib/workload/vm_requests.ml: Array Arrival_process Dvbp_core Dvbp_prelude Dvbp_vec List
