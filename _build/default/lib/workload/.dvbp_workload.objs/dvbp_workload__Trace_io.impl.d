lib/workload/trace_io.ml: Array Buffer Dvbp_core Dvbp_vec Fun In_channel List Printf Result String
