lib/workload/bursty.ml: Array Dvbp_core Dvbp_prelude Dvbp_vec Float List Uniform_model
