lib/workload/arrival_process.ml: Dvbp_prelude Float List
