lib/workload/bursty.mli: Dvbp_core Dvbp_prelude Uniform_model
