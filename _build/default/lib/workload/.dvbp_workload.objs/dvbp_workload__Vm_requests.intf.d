lib/workload/vm_requests.mli: Dvbp_core Dvbp_prelude
