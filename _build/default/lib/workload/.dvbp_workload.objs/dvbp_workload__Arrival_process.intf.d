lib/workload/arrival_process.mli: Dvbp_prelude
