module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = { base : Uniform_model.params; rho : float }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () ->
      if p.rho < 0.0 || p.rho > 1.0 then Error "Correlated: rho must lie in [0, 1]"
      else Ok ()

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let quantile u =
    (* maps [0,1) to {1..B} uniformly *)
    1 + Int.min (b.Uniform_model.bin_size - 1)
          (int_of_float (u *. float_of_int b.Uniform_model.bin_size))
  in
  let specs =
    List.init b.Uniform_model.n (fun _ ->
        let arrival =
          Rng.int_incl rng ~lo:0 ~hi:(b.Uniform_model.span - b.Uniform_model.mu)
        in
        let duration = Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.mu in
        let common = Rng.float rng 1.0 in
        let size =
          Vec.of_array
            (Array.init b.Uniform_model.d (fun _ ->
                 let own = Rng.float rng 1.0 in
                 quantile ((p.rho *. common) +. ((1.0 -. p.rho) *. own))))
        in
        (float_of_int arrival, float_of_int (arrival + duration), size))
  in
  Instance.of_specs_exn ~capacity:(Uniform_model.capacity b) specs
