(** Uniform model with correlated dimensions.

    Real multi-resource demands are correlated (a big VM is big in CPU {e
    and} memory). This generator interpolates between the paper's fully
    independent per-dimension sizes ([rho = 0]) and perfectly comonotone
    sizes ([rho = 1]) with a common-factor model:
    [size_j = quantile(rho·u + (1−rho)·u_j)] where [u, u_j ~ U(0,1)].
    Everything else follows Table 2. Used by the correlation ablation. *)

type params = {
  base : Uniform_model.params;
  rho : float;  (** correlation knob in [\[0, 1\]] *)
}

val validate : params -> (unit, string) result

val generate : params -> rng:Dvbp_prelude.Rng.t -> Dvbp_core.Instance.t
(** @raise Invalid_argument when {!validate} fails. *)
