module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = { d : int; n : int; mu : int; span : int; bin_size : int }

let default = { d = 1; n = 1000; mu = 10; span = 1000; bin_size = 100 }
let table2 ~d ~mu = { default with d; mu }

let validate p =
  if p.d <= 0 then Error "Uniform_model: d must be positive"
  else if p.n <= 0 then Error "Uniform_model: n must be positive"
  else if p.mu <= 0 then Error "Uniform_model: mu must be positive"
  else if p.bin_size <= 0 then Error "Uniform_model: bin_size must be positive"
  else if p.span < p.mu then Error "Uniform_model: span must be at least mu"
  else Ok ()

let capacity p = Vec.make ~dim:p.d p.bin_size

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let specs =
    List.init p.n (fun _ ->
        let arrival = Rng.int_incl rng ~lo:0 ~hi:(p.span - p.mu) in
        let duration = Rng.int_incl rng ~lo:1 ~hi:p.mu in
        let size =
          Vec.of_array (Array.init p.d (fun _ -> Rng.int_incl rng ~lo:1 ~hi:p.bin_size))
        in
        (float_of_int arrival, float_of_int (arrival + duration), size))
  in
  Instance.of_specs_exn ~capacity:(capacity p) specs
