module Vec = Dvbp_vec.Vec
module Instance = Dvbp_core.Instance
module Rng = Dvbp_prelude.Rng

type params = {
  base : Uniform_model.params;
  bursts : int;
  burst_size : int;
  burst_width : float;
}

let default =
  {
    base = { Uniform_model.default with Uniform_model.n = 600 };
    bursts = 8;
    burst_size = 50;
    burst_width = 2.0;
  }

let validate p =
  match Uniform_model.validate p.base with
  | Error _ as e -> e
  | Ok () ->
      if p.bursts < 0 then Error "Bursty: negative burst count"
      else if p.burst_size <= 0 then Error "Bursty: burst_size must be positive"
      else if p.burst_width <= 0.0 then Error "Bursty: burst_width must be positive"
      else if p.burst_width >= float_of_int p.base.Uniform_model.span then
        Error "Bursty: burst_width exceeds the span"
      else Ok ()

let generate p ~rng =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  let b = p.base in
  let size () =
    Vec.of_array
      (Array.init b.Uniform_model.d (fun _ ->
           Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.bin_size))
  in
  let duration () = float_of_int (Rng.int_incl rng ~lo:1 ~hi:b.Uniform_model.mu) in
  let baseline =
    List.init b.Uniform_model.n (fun _ ->
        let arrival =
          float_of_int
            (Rng.int_incl rng ~lo:0 ~hi:(b.Uniform_model.span - b.Uniform_model.mu))
        in
        (arrival, arrival +. duration (), size ()))
  in
  let burst_window = float_of_int (b.Uniform_model.span - b.Uniform_model.mu) in
  let burst_items =
    List.concat
      (List.init p.bursts (fun _ ->
           let start = Rng.float rng (Float.max 1e-9 (burst_window -. p.burst_width)) in
           List.init p.burst_size (fun _ ->
               let arrival = start +. Rng.float rng p.burst_width in
               (arrival, arrival +. duration (), size ()))))
  in
  Instance.of_specs_exn
    ~capacity:(Uniform_model.capacity b)
    (baseline @ burst_items)
