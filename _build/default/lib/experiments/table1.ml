module Rng = Dvbp_prelude.Rng
module Vec = Dvbp_vec.Vec
module Policy = Dvbp_core.Policy
module Instance = Dvbp_core.Instance
module Engine = Dvbp_engine.Engine
module Opt = Dvbp_lowerbound.Opt
module Bound_check = Dvbp_analysis.Bound_check
module Table = Dvbp_report.Table
module A = Dvbp_adversary

let render_theory () =
  let header =
    [ "Algorithm"; "LB (d=1)"; "UB (d=1)"; "LB (d>=1)"; "UB (d>=1)" ]
  in
  let rows =
    [
      [ "Any Fit"; "mu+1"; "unbounded"; "(mu+1)d  [Thm 5]"; "unbounded" ];
      [ "Move To Front"; "2mu  [Thm 8]"; "2mu+2  [Thm 2]";
        "max{2mu,(mu+1)d}  [Thm 8]"; "(2mu+1)d+1  [Thm 2]" ];
      [ "First Fit"; "mu+1"; "mu+3"; "(mu+1)d  [Thm 5]"; "(mu+2)d+1  [Thm 3]" ];
      [ "Next Fit"; "2mu"; "2mu+1"; "2mu*d  [Thm 6]"; "2mu*d+1  [Thm 4]" ];
      [ "Best Fit"; "unbounded"; "unbounded"; "unbounded  [Thm 7]"; "unbounded" ];
    ]
  in
  Table.render ~header ~rows

type verification_row = {
  gadget : string;
  policy : string;
  measured_cost : float;
  measured_ratio : float;
  certified_ratio : float;
  limit : float;
}

let run_gadget (g : A.Gadget.t) policy_name =
  let rng = Rng.create ~seed:99 in
  let policy = Policy.of_name_exn ~rng policy_name in
  let run = Engine.run ~policy g.A.Gadget.instance in
  {
    gadget = g.A.Gadget.name;
    policy = policy_name;
    measured_cost = Engine.cost run;
    measured_ratio = Engine.cost run /. g.A.Gadget.opt_upper;
    certified_ratio = A.Gadget.cr_lower g;
    limit = g.A.Gadget.cr_limit;
  }

let verify_gadgets ?(d = 2) ?(mu = 5.0) ?(ks = [ 2; 4; 8 ]) () =
  let strict = [ "ff"; "bf"; "wf"; "lf"; "mtf" ] in
  let anyfit =
    List.concat_map
      (fun k ->
        let g = A.Anyfit_lb.construct ~d ~k ~mu in
        List.map (run_gadget g) strict)
      ks
  in
  let nextfit =
    List.map
      (fun k ->
        let k = if k mod 2 = 0 then k else k + 1 in
        run_gadget (A.Nextfit_lb.construct ~d ~k ~mu) "nf")
      ks
  in
  let mtf =
    List.map (fun k -> run_gadget (A.Mtf_lb.construct ~n:k ~mu) "mtf") ks
  in
  let bestfit =
    List.map
      (fun k ->
        let t_end = float_of_int (4 * k * k) in
        run_gadget (A.Bestfit_lb.construct ~k ~t_end) "bf")
      ks
  in
  anyfit @ nextfit @ mtf @ bestfit

let render_verification rows =
  let header =
    [ "gadget"; "policy"; "cost"; "measured CR"; "certified CR"; "limit" ]
  in
  let fmt_limit l = if Float.is_finite l then Printf.sprintf "%.2f" l else "inf" in
  Table.render ~header
    ~rows:
      (List.map
         (fun r ->
           [
             r.gadget;
             r.policy;
             Printf.sprintf "%.2f" r.measured_cost;
             Printf.sprintf "%.3f" r.measured_ratio;
             Printf.sprintf "%.3f" r.certified_ratio;
             fmt_limit r.limit;
           ])
         rows)

type ub_fuzz_summary = {
  policy : string;
  instances : int;
  max_ratio : float;
  max_bound_fraction : float;
  violations : int;
}

(* Small random instances keep the exact-OPT search tractable. *)
let random_small_instance ~rng =
  let d = Rng.int_incl rng ~lo:1 ~hi:2 in
  let n = Rng.int_incl rng ~lo:2 ~hi:7 in
  let capacity = Vec.make ~dim:d 10 in
  let specs =
    List.init n (fun _ ->
        let a = Rng.int_incl rng ~lo:0 ~hi:5 in
        let dur = Rng.int_incl rng ~lo:1 ~hi:4 in
        let size = Vec.of_array (Array.init d (fun _ -> Rng.int_incl rng ~lo:1 ~hi:10)) in
        (float_of_int a, float_of_int (a + dur), size))
  in
  Instance.of_specs_exn ~capacity specs

let fuzz_upper_bounds ?(instances = 200) ?(seed = 7) () =
  let root = Rng.create ~seed in
  let policies = [ "mtf"; "ff"; "nf" ] in
  let acc = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace acc p (0.0, 0.0, 0)) policies;
  for i = 0 to instances - 1 do
    let inst = random_small_instance ~rng:(Rng.split root ~key:i) in
    let opt = Opt.exact_exn inst in
    List.iter
      (fun p ->
        let policy = Policy.of_name_exn p in
        let cost = Engine.cost (Engine.run ~policy inst) in
        match Bound_check.check ~policy:p ~cost ~opt ~instance:inst with
        | None -> assert false
        | Some v ->
            let max_r, max_f, viol = Hashtbl.find acc p in
            Hashtbl.replace acc p
              ( Float.max max_r v.Bound_check.ratio,
                Float.max max_f (v.Bound_check.ratio /. v.Bound_check.bound),
                if v.Bound_check.ok then viol else viol + 1 ))
      policies
  done;
  List.map
    (fun p ->
      let max_ratio, max_bound_fraction, violations = Hashtbl.find acc p in
      { policy = p; instances; max_ratio; max_bound_fraction; violations })
    policies

let convergence ?(ks = [ 2; 4; 8; 16; 32; 64 ]) ~d ~mu () =
  let fraction g = A.Gadget.cr_lower g /. g.A.Gadget.cr_limit in
  let series label marker construct =
    {
      Dvbp_report.Ascii_plot.label;
      marker;
      points =
        List.mapi (fun i k -> (float_of_int i, fraction (construct k))) ks;
    }
  in
  let plot =
    Dvbp_report.Ascii_plot.render ~x_label:"k index" ~y_label:"certified/limit"
      [
        series "anyfit (Thm 5)" 'A' (fun k -> A.Anyfit_lb.construct ~d ~k ~mu);
        series "nextfit (Thm 6)" 'N' (fun k ->
            A.Nextfit_lb.construct ~d ~k:(if k mod 2 = 0 then k else k + 1) ~mu);
        series "mtf (Thm 8)" 'M' (fun k -> A.Mtf_lb.construct ~n:k ~mu);
      ]
  in
  Printf.sprintf "certified CR as a fraction of the limiting bound (k in %s):\n%s"
    (String.concat "," (List.map string_of_int ks))
    plot

let render_fuzz rows =
  let header =
    [ "policy"; "instances"; "max cost/OPT"; "max ratio/bound"; "violations" ]
  in
  Table.render ~header
    ~rows:
      (List.map
         (fun r ->
           [
             r.policy;
             string_of_int r.instances;
             Printf.sprintf "%.3f" r.max_ratio;
             Printf.sprintf "%.3f" r.max_bound_fraction;
             string_of_int r.violations;
           ])
         rows)
