(** Table 2: the experimental parameters, rendered for the bench report so
    the regenerated Figure 4 is self-describing. *)

val render : ?instances:int -> unit -> string
(** The paper's parameter table; [instances] defaults to the paper's
    [m = 1000] and is printed as configured so reduced-budget runs are
    labelled honestly. *)
