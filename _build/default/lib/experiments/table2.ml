let render ?(instances = 1000) () =
  Dvbp_report.Table.render
    ~header:[ "Parameter"; "Description"; "Value" ]
    ~rows:
      [
        [ "d"; "Num. dimensions"; "{1, 2, 5}" ];
        [ "n"; "Sequence length"; "1000" ];
        [ "mu"; "Max. item length"; "{1, 2, 5, 10, 100, 200}" ];
        [ "T"; "Sequence span"; "1000" ];
        [ "B"; "Bin size"; "100" ];
        [ "m"; "Instances per point"; string_of_int instances ];
      ]
