(** Statistical head-to-head comparison of policies on a grid point.

    Figure 4's "Move To Front outperforms other Any Fit packing algorithms"
    is an ordering of sample means; this experiment makes it a tested claim:
    for a chosen baseline policy, every other policy's paired ratio samples
    are compared with the Mann–Whitney rank-sum test. *)

type row = {
  challenger : string;
  baseline : string;
  mean_gap : float;  (** challenger mean − baseline mean *)
  p_two_sided : float;
  verdict : string;  (** ["baseline wins"], ["challenger wins"] or ["tie"] *)
}

val head_to_head :
  ?instances:int ->
  ?seed:int ->
  ?baseline:string ->
  d:int ->
  mu:int ->
  unit ->
  row list
(** Runs the seven standard policies on the Table 2 workload at [(d, µ)]
    (defaults: 60 instances, seed 42, baseline ["mtf"]) and tests every
    other policy against the baseline at level 0.05. *)

val render : row list -> string
