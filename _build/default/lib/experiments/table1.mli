(** Table 1: competitive-ratio bounds, stated and empirically certified.

    Three artefacts regenerate the paper's table:
    - {!render_theory}: the bounds themselves, instantiated symbolically —
      what the paper prints;
    - {!verify_gadgets}: every §6 lower-bound gadget executed through the
      engine, reporting the measured ratio against the certified per-instance
      ratio and the limiting bound;
    - {!fuzz_upper_bounds}: randomized validation of the Thm 2–4 upper
      bounds against the exact OPT on small instances (a violation would
      falsify implementation or theorem). *)

val render_theory : unit -> string
(** The paper's Table 1 as text (symbolic in µ and d). *)

type verification_row = {
  gadget : string;
  policy : string;  (** the policy executed on the gadget *)
  measured_cost : float;
  measured_ratio : float;  (** measured cost / analytic OPT upper bound *)
  certified_ratio : float;  (** the gadget's analytic per-instance ratio *)
  limit : float;  (** the theorem's limiting bound *)
}

val verify_gadgets :
  ?d:int -> ?mu:float -> ?ks:int list -> unit -> verification_row list
(** Runs each gadget family (Thm 5 on all strict Any Fit policies, Thm 6 on
    Next Fit, Thm 8 on Move To Front, the Thm 7 family on Best Fit) at the
    given sizes. Defaults: [d = 2], [mu = 5], [ks = \[2; 4; 8\]]. *)

val render_verification : verification_row list -> string

type ub_fuzz_summary = {
  policy : string;
  instances : int;
  max_ratio : float;  (** worst observed [cost / OPT_exact] *)
  max_bound_fraction : float;  (** worst observed [ratio / bound] — must be <= 1 *)
  violations : int;  (** number of bound violations (expected 0) *)
}

val fuzz_upper_bounds : ?instances:int -> ?seed:int -> unit -> ub_fuzz_summary list
(** Random small instances (exact OPT computable); checks Thm 2/3/4 bounds
    for mtf/ff/nf. Default 200 instances, seed 7. *)

val render_fuzz : ub_fuzz_summary list -> string

val convergence : ?ks:int list -> d:int -> mu:float -> unit -> string
(** ASCII plot of how each gadget family's certified ratio approaches its
    theorem's limit as the growth parameter increases (y = certified/limit,
    x = k index) — the "in the limit k → ∞" step of every §6 proof, made
    visible. *)
