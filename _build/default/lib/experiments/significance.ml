module Uniform_model = Dvbp_workload.Uniform_model
module Compare = Dvbp_stats.Compare
module Table = Dvbp_report.Table

type row = {
  challenger : string;
  baseline : string;
  mean_gap : float;
  p_two_sided : float;
  verdict : string;
}

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let head_to_head ?(instances = 60) ?(seed = 42) ?(baseline = "mtf") ~d ~mu () =
  let params = Uniform_model.table2 ~d ~mu in
  let samples =
    Runner.ratio_samples ~instances ~seed
      ~gen:(fun ~rng -> Uniform_model.generate params ~rng)
      ~competitors:(Runner.standard_competitors ())
      ()
  in
  let base =
    match List.assoc_opt baseline samples with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Significance: unknown baseline %S" baseline)
  in
  List.filter_map
    (fun (label, s) ->
      if label = baseline then None
      else
        let r = Compare.rank_sum s base in
        let verdict =
          if Compare.significantly_less base s then baseline ^ " wins"
          else if Compare.significantly_less s base then label ^ " wins"
          else "tie"
        in
        Some
          {
            challenger = label;
            baseline;
            mean_gap = mean s -. mean base;
            p_two_sided = r.Compare.p_two_sided;
            verdict;
          })
    samples

let render rows =
  Table.render
    ~header:[ "challenger"; "baseline"; "mean gap"; "p (two-sided)"; "verdict" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.challenger;
             r.baseline;
             Printf.sprintf "%+.4f" r.mean_gap;
             Printf.sprintf "%.4g" r.p_two_sided;
             r.verdict;
           ])
         rows)
