(** Figure 4: average-case performance of Any Fit policies on the Table 2
    uniform workload.

    For every grid point [(d, µ)] the experiment draws [instances] random
    instances, runs the seven policies, and reports mean ± standard
    deviation of [cost / LowerBound(i)] — exactly the quantity the paper
    plots. The paper's grid is [d ∈ {1,2,5}] × [µ ∈ {1,2,5,10,100,200}]
    with 1000 instances per point; {!default} keeps the grid but fewer
    instances so the bench harness stays interactive, and {!paper} is the
    full-fat version. *)

type config = {
  ds : int list;
  mus : int list;
  instances : int;
  seed : int;
  n_items : int;
  span : int;
  bin_size : int;
}

val default : config
(** Full grid, 60 instances per point, seed 42. *)

val paper : config
(** Full grid, 1000 instances per point (Table 2's [m]). *)

type cell = { d : int; mu : int; per_policy : (string * Runner.stats) list }

val run : ?progress:(string -> unit) -> config -> cell list
(** Cells in row-major [(d, µ)] order. [progress] receives one line per
    completed cell. *)

val render_table : cell list -> string
(** One aligned table: rows are grid points, columns are policies
    (mean±std). *)

val render_plots : cell list -> string
(** One ASCII plot per dimension count: x = µ (log scale positions by
    index), y = mean ratio, one series per policy — the shape of the
    paper's 18 panels condensed to 3. *)

val to_csv : cell list -> string
(** Long-format CSV: [d,mu,policy,mean,std,min,max,n]. *)
