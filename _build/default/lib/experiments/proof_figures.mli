(** Textual reproductions of the paper's illustrative figures.

    Figures 1–3 in the paper are schematic; here each one is regenerated
    from an actual engine execution of a suitable instance, rendered as an
    ASCII Gantt chart plus the invariant the figure illustrates, checked on
    the spot. *)

val figure1 : unit -> string
(** Figure 1: usage periods of bins under Move To Front decomposed into
    leading ([#]) and non-leading ([=]) intervals, on the Thm 8 instance.
    Ends with the Claim 1 check (leading intervals partition the span). *)

val figure2 : unit -> string
(** Figure 2: the [P_i]/[Q_i] decomposition of a First Fit packing on a
    staggered 3-bin instance, with the Claim 4 check
    ([Σ ℓ(Q_i) = span(R)]). *)

val figure3 : ?d:int -> ?k:int -> ?mu:float -> unit -> string
(** Figure 3: execution of a strict Any Fit policy (First Fit) on the
    Theorem 5 construction — [dk] bins opened in [\[0,1)], every bin pinned
    by one probe item for the [µ] window. Shows the per-bin load vectors
    right after the initial phase and the resulting Gantt. Defaults:
    [d = 2], [k = 2], [µ = 3]. *)
