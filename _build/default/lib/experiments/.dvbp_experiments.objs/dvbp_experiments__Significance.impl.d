lib/experiments/significance.ml: Array Dvbp_report Dvbp_stats Dvbp_workload List Printf Runner
