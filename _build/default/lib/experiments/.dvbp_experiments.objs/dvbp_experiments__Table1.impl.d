lib/experiments/table1.ml: Array Dvbp_adversary Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_report Dvbp_vec Float Hashtbl List Printf String
