lib/experiments/figure4.ml: Char Dvbp_prelude Dvbp_report Dvbp_workload Int List Printf Runner String
