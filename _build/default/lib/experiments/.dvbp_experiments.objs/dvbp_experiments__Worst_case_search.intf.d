lib/experiments/worst_case_search.mli: Dvbp_core
