lib/experiments/scenarios.mli: Runner
