lib/experiments/worst_case_search.ml: Array Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_vec Int List Printf
