lib/experiments/runner.mli: Dvbp_core Dvbp_prelude
