lib/experiments/ablations.ml: Dvbp_core Dvbp_lowerbound Dvbp_report Dvbp_workload List Printf Runner
