lib/experiments/scenarios.ml: Ablations Dvbp_core Dvbp_workload Runner
