lib/experiments/proof_figures.mli:
