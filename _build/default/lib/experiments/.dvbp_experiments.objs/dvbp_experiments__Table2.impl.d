lib/experiments/table2.ml: Dvbp_report
