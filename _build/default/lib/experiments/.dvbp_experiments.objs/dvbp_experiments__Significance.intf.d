lib/experiments/significance.mli:
