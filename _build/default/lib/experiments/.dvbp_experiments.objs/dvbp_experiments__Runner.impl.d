lib/experiments/runner.ml: Array Dvbp_core Dvbp_engine Dvbp_lowerbound Dvbp_prelude Dvbp_stats Float List String
