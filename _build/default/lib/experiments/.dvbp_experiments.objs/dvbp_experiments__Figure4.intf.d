lib/experiments/figure4.mli: Runner
