lib/experiments/proof_figures.ml: Dvbp_adversary Dvbp_analysis Dvbp_core Dvbp_engine Dvbp_interval Dvbp_vec List Printf String
