module Vec = Dvbp_vec.Vec
module Interval = Dvbp_interval.Interval
module Core = Dvbp_core
module Engine = Dvbp_engine.Engine
module An = Dvbp_analysis
module A = Dvbp_adversary

let figure1 () =
  let g = A.Mtf_lb.construct ~n:2 ~mu:6.0 in
  let run = Engine.run ~policy:(Core.Policy.move_to_front ()) g.A.Gadget.instance in
  let decomposition = An.Mtf_decomposition.analyse run.Engine.trace in
  let highlight bin_id =
    match
      List.find_opt
        (fun b -> b.An.Mtf_decomposition.bin_id = bin_id)
        decomposition.An.Mtf_decomposition.bins
    with
    | Some b -> b.An.Mtf_decomposition.leading
    | None -> Dvbp_interval.Interval_set.empty
  in
  let activity = Core.Instance.activity g.A.Gadget.instance in
  Printf.sprintf
    "Figure 1 — Move To Front usage periods on %s\n\
     (# = leading interval, = = non-leading interval)\n\n%s\n\
     leading total   = %.3f\n\
     span(R)         = %.3f\n\
     Claim 1 (leading intervals partition the span): %s\n"
    g.A.Gadget.name
    (An.Gantt.render ~highlight run.Engine.packing)
    (An.Mtf_decomposition.leading_total decomposition)
    (Core.Instance.span g.A.Gadget.instance)
    (if An.Mtf_decomposition.leading_partition_activity decomposition ~activity
     then "holds"
     else "VIOLATED")

let figure2 () =
  let capacity = Vec.of_list [ 100 ] in
  let instance =
    Core.Instance.of_specs_exn ~capacity
      [
        (0.0, 4.0, Vec.of_list [ 60 ]);
        (1.0, 3.0, Vec.of_list [ 60 ]);
        (2.0, 6.0, Vec.of_list [ 60 ]);
      ]
  in
  let run = Engine.run ~policy:(Core.Policy.first_fit ()) instance in
  let decomposition = An.Ff_decomposition.analyse run.Engine.packing in
  let activity = Core.Instance.activity instance in
  let rows =
    List.map
      (fun b ->
        Printf.sprintf "bin %d: I=%s P=%s Q=%s" b.An.Ff_decomposition.bin_id
          (Interval.to_string b.An.Ff_decomposition.usage)
          (Interval.to_string b.An.Ff_decomposition.p)
          (Interval.to_string b.An.Ff_decomposition.q))
      decomposition.An.Ff_decomposition.bins
  in
  let highlight bin_id =
    match
      List.find_opt
        (fun b -> b.An.Ff_decomposition.bin_id = bin_id)
        decomposition.An.Ff_decomposition.bins
    with
    | Some b -> Dvbp_interval.Interval_set.of_intervals [ b.An.Ff_decomposition.q ]
    | None -> Dvbp_interval.Interval_set.empty
  in
  Printf.sprintf
    "Figure 2 — First Fit P/Q decomposition (staggered 3-bin instance)\n\
     (# = Q_i, the part after every earlier bin closed)\n\n%s\n%s\n\n\
     sum of Q lengths = %.3f, span(R) = %.3f\n\
     Claim 4 (Q_i partition the span): %s\n"
    (An.Gantt.render ~highlight run.Engine.packing)
    (String.concat "\n" rows)
    (An.Ff_decomposition.q_total decomposition)
    (Core.Instance.span instance)
    (if An.Ff_decomposition.check_claim4 decomposition ~activity then "holds"
     else "VIOLATED")

let figure3 ?(d = 2) ?(k = 2) ?(mu = 3.0) () =
  let g = A.Anyfit_lb.construct ~d ~k ~mu in
  let run = Engine.run ~policy:(Core.Policy.first_fit ()) g.A.Gadget.instance in
  let packing = run.Engine.packing in
  (* Per-bin load vector at a probe time (just after R1 lands). *)
  let t_probe = 1.0 -. (1.0 /. float_of_int k) in
  let load_at t (b : Core.Packing.bin_record) =
    Vec.sum ~dim:d
      (List.filter_map
         (fun (r : Core.Item.t) ->
           if Core.Item.active_at r t then Some r.Core.Item.size else None)
         b.Core.Packing.items)
  in
  let loads =
    String.concat "\n"
      (List.map
         (fun (b : Core.Packing.bin_record) ->
           Printf.sprintf "bin %d load at t=%.3f: %s" b.Core.Packing.bin_id t_probe
             (Vec.to_string (load_at t_probe b)))
         packing.Core.Packing.bins)
  in
  Printf.sprintf
    "Figure 3 — Any Fit execution on the Theorem 5 construction (%s)\n\
     capacity per dimension: %s\n\n%s\n%s\n\n\
     bins opened = %d (construction forces d*k = %d)\n\
     measured cost = %.3f >= analytic bound %.3f\n\
     certified CR on this instance = %.3f (limit (mu+1)d = %.1f)\n"
    g.A.Gadget.name
    (Vec.to_string g.A.Gadget.instance.Core.Instance.capacity)
    (An.Gantt.render packing)
    loads run.Engine.bins_opened (d * k) (Core.Packing.cost packing)
    g.A.Gadget.alg_cost_lower
    (A.Gadget.cr_lower g)
    g.A.Gadget.cr_limit
