type event =
  | Opened of { time : float; bin_id : int }
  | Placed of { time : float; item_id : int; bin_id : int }
  | Departed of { time : float; item_id : int; bin_id : int }
  | Closed of { time : float; bin_id : int }

type t = event list

let of_events es = es
let events t = t
let length = List.length

let time_of = function
  | Opened { time; _ } | Placed { time; _ } | Departed { time; _ } | Closed { time; _ }
    -> time

let placements t =
  List.filter_map
    (function Placed { time; item_id; bin_id } -> Some (time, item_id, bin_id) | _ -> None)
    t

let openings t =
  List.filter_map (function Opened { time; bin_id } -> Some (time, bin_id) | _ -> None) t

let closings t =
  List.filter_map (function Closed { time; bin_id } -> Some (time, bin_id) | _ -> None) t

let bin_of = function
  | Opened { bin_id; _ } | Placed { bin_id; _ } | Departed { bin_id; _ }
  | Closed { bin_id; _ } ->
      bin_id

let events_of_bin t id = List.filter (fun e -> bin_of e = id) t

let pp_event ppf = function
  | Opened { time; bin_id } -> Format.fprintf ppf "%8.3f open   bin %d" time bin_id
  | Placed { time; item_id; bin_id } ->
      Format.fprintf ppf "%8.3f place  item %d -> bin %d" time item_id bin_id
  | Departed { time; item_id; bin_id } ->
      Format.fprintf ppf "%8.3f depart item %d <- bin %d" time item_id bin_id
  | Closed { time; bin_id } -> Format.fprintf ppf "%8.3f close  bin %d" time bin_id

let pp ppf t = Format.pp_print_list pp_event ppf t

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,time,item_id,bin_id\n";
  List.iter
    (fun e ->
      let row =
        match e with
        | Opened { time; bin_id } -> Printf.sprintf "open,%.17g,,%d" time bin_id
        | Placed { time; item_id; bin_id } ->
            Printf.sprintf "place,%.17g,%d,%d" time item_id bin_id
        | Departed { time; item_id; bin_id } ->
            Printf.sprintf "depart,%.17g,%d,%d" time item_id bin_id
        | Closed { time; bin_id } -> Printf.sprintf "close,%.17g,,%d" time bin_id
      in
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf
