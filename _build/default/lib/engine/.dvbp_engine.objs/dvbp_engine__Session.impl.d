lib/engine/session.ml: Dvbp_core Dvbp_prelude Dvbp_vec Float Hashtbl Int List Option Printf Trace
