lib/engine/trace.ml: Buffer Format List Printf
