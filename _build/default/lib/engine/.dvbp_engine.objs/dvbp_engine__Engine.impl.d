lib/engine/engine.ml: Dvbp_core List Session Trace
