lib/engine/engine.mli: Dvbp_core Trace
