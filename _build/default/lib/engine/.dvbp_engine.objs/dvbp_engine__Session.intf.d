lib/engine/session.mli: Dvbp_core Dvbp_vec Trace
