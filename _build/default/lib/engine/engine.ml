module Core = Dvbp_core
module Item = Core.Item

exception Policy_error of string

type run = {
  packing : Core.Packing.t;
  trace : Trace.t;
  bins_opened : int;
  max_open_bins : int;
}

type sim_event = Depart of Item.t | Arrive of Item.t

(* Departures sort before arrivals at equal times (half-open intervals). *)
let event_key = function
  | Depart r -> (r.Item.departure, 0, r.Item.id)
  | Arrive r -> (r.Item.arrival, 1, r.Item.id)

let compare_events a b = compare (event_key a) (event_key b)

(* The batch engine is a thin driver over the incremental session: it knows
   the full future, sorts it, and feeds it event by event. *)
let run ?(clairvoyant = false) ?departure_oracle ~policy (instance : Core.Instance.t) =
  let oracle =
    match departure_oracle with
    | Some f -> f
    | None ->
        if clairvoyant then fun (r : Item.t) -> Some r.Item.departure
        else fun _ -> None
  in
  let events =
    List.stable_sort compare_events
      (List.concat_map
         (fun r -> [ Arrive r; Depart r ])
         instance.Core.Instance.items)
  in
  let session = Session.create ~capacity:instance.Core.Instance.capacity ~policy in
  (try
     List.iter
       (function
         | Arrive r ->
             let departure = oracle r in
             ignore
               (Session.arrive session ~at:r.Item.arrival ~id:r.Item.id ?departure
                  ~size:r.Item.size ())
         | Depart r -> Session.depart session ~at:r.Item.departure ~item_id:r.Item.id)
       events
   with Session.Session_error msg -> raise (Policy_error msg));
  assert (Session.active_items session = 0);
  let horizon = Session.now session in
  let trace = Session.trace session in
  let packing = Session.finish session ~at:horizon in
  {
    packing;
    trace;
    bins_opened = Session.bins_opened session;
    max_open_bins = Session.max_open_bins session;
  }

let cost run = Core.Packing.cost run.packing
