(** Structured record of everything a simulation did, in chronological
    order. The analysis library replays traces to reconstruct the proofs'
    decompositions (leader timelines for Move To Front, blocking bins for
    First Fit), so the trace is the ground truth of an execution. *)

type event =
  | Opened of { time : float; bin_id : int }
  | Placed of { time : float; item_id : int; bin_id : int }
  | Departed of { time : float; item_id : int; bin_id : int }
  | Closed of { time : float; bin_id : int }

type t
(** Chronological event list (same-instant events appear in processing
    order: departures and closes before placements and opens). *)

val of_events : event list -> t
(** Takes events already in chronological order (not re-sorted — order
    within an instant is meaningful). *)

val events : t -> event list
val length : t -> int

val time_of : event -> float

val placements : t -> (float * int * int) list
(** [(time, item_id, bin_id)] for every [Placed] event, in order. *)

val openings : t -> (float * int) list
(** [(time, bin_id)] for every [Opened] event, in order. *)

val closings : t -> (float * int) list

val events_of_bin : t -> int -> event list
(** All events touching the given bin, in order. *)

val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** One row per event: [kind,time,item_id,bin_id] (empty item for
    open/close) — for external analysis of executions. *)
