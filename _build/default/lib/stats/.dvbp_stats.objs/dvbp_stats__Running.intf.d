lib/stats/running.mli:
