lib/stats/normal.ml: Float
