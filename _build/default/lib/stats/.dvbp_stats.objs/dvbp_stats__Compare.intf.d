lib/stats/compare.mli:
