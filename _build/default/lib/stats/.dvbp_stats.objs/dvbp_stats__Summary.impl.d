lib/stats/summary.ml: Array Float Format Int List Running
