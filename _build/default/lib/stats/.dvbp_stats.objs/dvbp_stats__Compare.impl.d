lib/stats/compare.ml: Array Float Fun Normal Summary
