lib/stats/normal.mli:
