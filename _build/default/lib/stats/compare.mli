(** Statistical comparison of two sample sets (e.g. two policies' ratio
    distributions over the same random instances).

    The paper's Figure 4 claims an ordering of the policies; these tests
    say whether an observed gap is signal or noise. *)

type rank_sum_result = {
  u : float;  (** Mann–Whitney U statistic of the first sample *)
  z : float;  (** normal approximation z-score (tie-corrected) *)
  p_two_sided : float;
  median_shift : float;  (** median(a) − median(b), for direction *)
}

val rank_sum : float array -> float array -> rank_sum_result
(** Mann–Whitney U test with the normal approximation and tie correction.
    Suitable for the sample sizes used here (>= ~20 per side).
    @raise Invalid_argument if either sample is empty. *)

val significantly_less : ?alpha:float -> float array -> float array -> bool
(** [significantly_less a b] — is [a] stochastically smaller than [b] at
    level [alpha] (default 0.05)? One-sided: requires both a small two-sided
    p and a negative median shift. *)

val mean_confidence_interval :
  ?confidence:float -> float array -> float * float
(** Normal-approximation CI for the mean (default 95%).
    @raise Invalid_argument on fewer than two samples. *)
