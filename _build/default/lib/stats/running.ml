type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let require_nonempty t = if t.n = 0 then failwith "Running: empty accumulator"

let mean t =
  require_nonempty t;
  t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min_value t =
  require_nonempty t;
  t.lo

let max_value t =
  require_nonempty t;
  t.hi

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
