(** The standard normal distribution (for test statistics).

    Only what the comparison tests need: density, CDF (Abramowitz–Stegun
    7.1.26 rational approximation of erf, absolute error < 1.5e-7) and a
    two-sided tail probability. *)

val pdf : float -> float
val cdf : float -> float
(** [P(Z <= x)] for [Z ~ N(0,1)]. *)

val two_sided_p : float -> float
(** [P(|Z| >= |z|)] — the two-sided p-value of a z-score. *)
