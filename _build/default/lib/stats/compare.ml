type rank_sum_result = {
  u : float;
  z : float;
  p_two_sided : float;
  median_shift : float;
}

(* Midranks of the concatenation, plus the tie-correction term
   Σ (t³ − t) over tie groups. *)
let midranks values =
  let n = Array.length values in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let ranks = Array.make n 0.0 in
  let tie_term = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i)) do
      incr j
    done;
    let group = float_of_int (!j - !i + 1) in
    let rank = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      ranks.(order.(k)) <- rank
    done;
    tie_term := !tie_term +. ((group ** 3.0) -. group);
    i := !j + 1
  done;
  (ranks, !tie_term)

let median a =
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  Summary.quantile sorted 0.5

let rank_sum a b =
  let n1 = Array.length a and n2 = Array.length b in
  if n1 = 0 || n2 = 0 then invalid_arg "Compare.rank_sum: empty sample";
  let combined = Array.append a b in
  let ranks, tie_term = midranks combined in
  let r1 = ref 0.0 in
  for i = 0 to n1 - 1 do
    r1 := !r1 +. ranks.(i)
  done;
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let u = !r1 -. (n1f *. (n1f +. 1.0) /. 2.0) in
  let mean_u = n1f *. n2f /. 2.0 in
  let n = n1f +. n2f in
  let var_u =
    n1f *. n2f /. 12.0 *. ((n +. 1.0) -. (tie_term /. (n *. (n -. 1.0))))
  in
  let z = if var_u > 0.0 then (u -. mean_u) /. sqrt var_u else 0.0 in
  {
    u;
    z;
    p_two_sided = (if var_u > 0.0 then Normal.two_sided_p z else 1.0);
    median_shift = median a -. median b;
  }

let significantly_less ?(alpha = 0.05) a b =
  let r = rank_sum a b in
  (* one-sided via halved two-sided p in the right direction *)
  r.z < 0.0 && r.p_two_sided /. 2.0 < alpha

let mean_confidence_interval ?(confidence = 0.95) samples =
  if Array.length samples < 2 then
    invalid_arg "Compare.mean_confidence_interval: need at least two samples";
  let s = Summary.of_samples (Array.to_list samples) in
  (* invert the normal CDF for the needed quantile by bisection — no closed
     form required, and the function is monotone *)
  let q = 1.0 -. ((1.0 -. confidence) /. 2.0) in
  let rec invert lo hi =
    let mid = (lo +. hi) /. 2.0 in
    if hi -. lo < 1e-9 then mid
    else if Normal.cdf mid < q then invert mid hi
    else invert lo mid
  in
  let z = invert 0.0 10.0 in
  let half = z *. s.Summary.stddev /. sqrt (float_of_int s.Summary.count) in
  (s.Summary.mean -. half, s.Summary.mean +. half)
