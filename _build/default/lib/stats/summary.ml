type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty input";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q out of [0,1]";
  if n = 1 then sorted.(0)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let of_samples samples =
  if samples = [] then invalid_arg "Summary.of_samples: empty list";
  let acc = Running.create () in
  List.iter (Running.add acc) samples;
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  {
    count = Running.count acc;
    mean = Running.mean acc;
    stddev = Running.stddev acc;
    min = Running.min_value acc;
    max = Running.max_value acc;
    median = quantile sorted 0.5;
    p90 = quantile sorted 0.9;
    p99 = quantile sorted 0.99;
  }

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f p90=%.4f p99=%.4f max=%.4f"
    t.count t.mean t.stddev t.min t.median t.p90 t.p99 t.max
