let pdf x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)

(* Abramowitz & Stegun 7.1.26 for erf on x >= 0. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

let two_sided_p z = 2.0 *. (1.0 -. cdf (Float.abs z))
