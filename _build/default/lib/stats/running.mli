(** Single-pass (Welford) accumulation of mean and variance.

    Figure 4 of the paper reports mean ± standard deviation over 1000
    random instances per sweep point; this accumulator produces both without
    storing the samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** @raise Failure on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; [0] when fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** @raise Failure on an empty accumulator. *)

val max_value : t -> float
(** @raise Failure on an empty accumulator. *)

val merge : t -> t -> t
(** Combines two accumulators (Chan's parallel update); inputs unchanged. *)
