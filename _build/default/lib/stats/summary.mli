(** Batch summaries of stored samples: quantiles and pretty-printing. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val of_samples : float list -> t
(** @raise Invalid_argument on an empty list. *)

val quantile : float array -> float -> float
(** [quantile sorted q] is the linearly-interpolated [q]-quantile
    ([0 <= q <= 1]) of an ascending-sorted array.
    @raise Invalid_argument on empty input or [q] out of range. *)

val pp : Format.formatter -> t -> unit
